//! The line-delimited JSON wire protocol of the sweep service.
//!
//! Every frame exchanged between `sweep serve` and `sweep submit` is one
//! line of JSON terminated by `\n` — the rustengan/Maelstrom shape: a
//! blocking reader can parse frames with nothing but `read_line`, and a
//! human can drive the daemon with `nc -U`.  The vendored `serde` stubs do
//! not serialize (see `vendor/README.md`), so the codec here is hand
//! rolled around a small JSON [`Value`] model and two traits:
//!
//! * [`ToWire`] — renders a type into a [`Value`] (the analogue of
//!   `serde::Serialize`);
//! * [`FromWire`] — rebuilds a type from a [`Value`] (the analogue of
//!   `serde::Deserialize`), rejecting missing fields, wrong types and
//!   out-of-range numbers with a [`WireError`] instead of panicking.
//!
//! **Swapping in the real serde** (once the build environment has network
//! access): `Value` is isomorphic to `serde_json::Value` with ordered
//! object fields, and each `ToWire`/`FromWire` impl is the explicit form
//! of a `#[derive(Serialize, Deserialize)]` plus `#[serde(tag = "type")]`
//! on [`Frame`].  The swap replaces the impls with derives and
//! [`encode_line`]/[`decode_line`] with `serde_json::to_string`/
//! `from_str`; the on-wire format is designed to come out identical, so
//! old clients keep working.
//!
//! The frame grammar (the full lifecycle is diagrammed in
//! `docs/ARCHITECTURE.md`):
//!
//! ```text
//! client → server   {"type":"hello","token":s}              (TCP auth, first frame)
//!                   {"type":"job", ...JobSpec}
//!                   {"type":"cancel","job":N}
//!                   {"type":"shutdown"}
//!                   {"type":"stats"}                        (metrics snapshot request)
//! server → client   {"type":"shard-done", ...ShardDone}     (per shard)
//!                   {"type":"partial", ...Partial}          (per prefix growth)
//!                   {"type":"job-done", ...JobDone}         (terminal, success)
//!                   {"type":"error", ...ErrorFrame}         (terminal, failure)
//!                   {"type":"cancel-ack","job":N,"found":b} (cancel ack)
//!                   {"type":"shutting-down"}                (shutdown ack)
//!                   {"type":"stats-result", ...}            (metrics snapshot)
//! worker → server   {"type":"register"}                     (join the fleet)
//!                   {"type":"heartbeat","worker":N}         (liveness, periodic)
//!                   {"type":"lease-done", ...LeaseDone}     (shard executed)
//!                   {"type":"lease-failed", ...LeaseFailed} (shard rejected)
//! server → worker   {"type":"registered", ...}              (worker id + TTLs)
//!                   {"type":"lease", ...LeaseGrant}         (one shard to run)
//!                   {"type":"lease-revoke","lease":N,...}   (grant withdrawn)
//! ```

use std::fmt;

use sweep::experiments::{
    Fig4Acc, Fig4Row, Prop2ExhaustiveRow, Prop2Report, Prop2Targeted, Thm1Case, Thm1Outcome,
    Thm3Acc, Thm3Row,
};
use sweep::{CursorStats, SweepStats};
use telemetry::{HistogramSnapshot, MetricsSnapshot};

// ---------------------------------------------------------------------------
// The JSON value model.
// ---------------------------------------------------------------------------

/// A parsed JSON value.
///
/// Integers and floats are kept apart (`1` vs `1.0` on the wire) so integer
/// fields round-trip exactly — including `u128` scope sizes, which a lossy
/// `f64` model would corrupt.  Objects preserve field order, making
/// encoding deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent.
    Int(i128),
    /// A number with a fraction or exponent.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, fields in encoding order.
    Object(Vec<(String, Value)>),
}

/// A wire-level encode/decode failure: malformed JSON, a missing field, a
/// type mismatch, or an out-of-range number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong, naming the offending field or byte offset.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> Self {
        WireError { message: message.into() }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.message)
    }
}

impl std::error::Error for WireError {}

/// Renders a type into a wire [`Value`] — the hand-rolled analogue of
/// `serde::Serialize` (see the module docs for the swap path).
pub trait ToWire {
    /// Returns the wire representation of `self`.
    fn to_wire(&self) -> Value;
}

/// Rebuilds a type from a wire [`Value`] — the hand-rolled analogue of
/// `serde::Deserialize`.
pub trait FromWire: Sized {
    /// Parses `value` into `Self`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] naming the missing field or type mismatch.
    fn from_wire(value: &Value) -> Result<Self, WireError>;
}

impl Value {
    /// Looks up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a required field, with a clear error when absent.
    fn field(&self, key: &str) -> Result<&Value, WireError> {
        self.get(key).ok_or_else(|| WireError::new(format!("missing field {key:?}")))
    }

    fn as_i128(&self, what: &str) -> Result<i128, WireError> {
        match self {
            Value::Int(i) => Ok(*i),
            _ => Err(WireError::new(format!("{what} must be an integer, got {self:?}"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, WireError> {
        u64::try_from(self.as_i128(what)?)
            .map_err(|_| WireError::new(format!("{what} out of u64 range")))
    }

    fn as_u32(&self, what: &str) -> Result<u32, WireError> {
        u32::try_from(self.as_i128(what)?)
            .map_err(|_| WireError::new(format!("{what} out of u32 range")))
    }

    fn as_usize(&self, what: &str) -> Result<usize, WireError> {
        usize::try_from(self.as_i128(what)?)
            .map_err(|_| WireError::new(format!("{what} out of usize range")))
    }

    fn as_u128(&self, what: &str) -> Result<u128, WireError> {
        u128::try_from(self.as_i128(what)?)
            .map_err(|_| WireError::new(format!("{what} out of u128 range")))
    }

    fn as_f64(&self, what: &str) -> Result<f64, WireError> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(WireError::new(format!("{what} must be a number, got {self:?}"))),
        }
    }

    fn as_bool(&self, what: &str) -> Result<bool, WireError> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(WireError::new(format!("{what} must be a boolean, got {self:?}"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, WireError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(WireError::new(format!("{what} must be a string, got {self:?}"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Value], WireError> {
        match self {
            Value::Array(items) => Ok(items),
            _ => Err(WireError::new(format!("{what} must be an array, got {self:?}"))),
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Int(i) => {
                out.push_str(&i.to_string());
            }
            Value::Float(f) => {
                // `{:?}` is Rust's shortest round-trip rendering; non-finite
                // values are not representable in JSON and must not reach
                // the encoder (frames only carry finite wall times).
                debug_assert!(f.is_finite(), "non-finite float on the wire");
                let text = format!("{f:?}");
                // Guarantee the Int/Float distinction survives: a float
                // always renders with a '.' or exponent.
                if text.contains('.') || text.contains('e') || text.contains('E') {
                    out.push_str(&text);
                } else {
                    out.push_str(&text);
                    out.push_str(".0");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text`, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] naming the byte offset of the first problem —
    /// truncated input, stray bytes after the value, bad escapes, numbers
    /// out of range, or nesting beyond the depth limit.
    pub fn parse(text: &str) -> Result<Value, WireError> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.value(0)?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(WireError::new(format!(
                "trailing bytes after the value at offset {}",
                parser.pos
            )));
        }
        Ok(value)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum nesting depth the parser accepts — far above any frame this
/// protocol produces, low enough that adversarial input cannot blow the
/// stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn error(&self, message: impl Into<String>) -> WireError {
        WireError::new(format!("{} at offset {}", message.into(), self.pos))
    }

    fn expect(&mut self, byte: u8) -> Result<(), WireError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_whitespace();
                    items.push(self.value(depth + 1)?);
                    self.skip_whitespace();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.error("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_whitespace();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    self.skip_whitespace();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_whitespace();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.error("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&other) => Err(self.error(format!("unexpected byte {:?}", other as char))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, WireError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {text:?}")))
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| self.error("invalid UTF-8"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape =
                        *self.bytes.get(self.pos).ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogates never appear in the frames this
                            // protocol encodes; reject rather than build
                            // invalid UTF-8.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            let mut buffer = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buffer).as_bytes());
                        }
                        other => {
                            return Err(self.error(format!("invalid escape '\\{}'", other as char)));
                        }
                    }
                }
                Some(&byte) if byte < 0x20 => {
                    return Err(self.error("raw control byte in string"));
                }
                Some(&byte) => {
                    out.push(byte);
                    self.pos += 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = self
                .bytes
                .get(self.pos)
                .and_then(|&b| (b as char).to_digit(16))
                .ok_or_else(|| self.error("invalid \\u escape"))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, WireError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .ok()
                .filter(|f| f.is_finite())
                .map(Value::Float)
                .ok_or_else(|| self.error(format!("invalid number {text:?}")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.error(format!("integer {text:?} out of range")))
        }
    }
}

// ---------------------------------------------------------------------------
// Frames.
// ---------------------------------------------------------------------------

/// Which query a job runs — the paper experiments the one-shot `sweep` CLI
/// exposes, served repeatedly by the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Theorem 1 exhaustive unbeatability (shard-cacheable).
    Thm1,
    /// The Theorem 1 fold over the exhaustive send-omission space
    /// (shard-cacheable; its fingerprints carry `model=omission`).
    Omission,
    /// Theorem 3 seeded random decision-time bound (shard-cacheable).
    Thm3,
    /// Fig. 4 uniform-gap family (shard-cacheable).
    Fig4,
    /// Proposition 2 connectivity report (job-level cacheable).
    Prop2,
}

impl QueryKind {
    /// The wire (and fingerprint) name of the query.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Thm1 => "thm1",
            QueryKind::Omission => "omission",
            QueryKind::Thm3 => "thm3",
            QueryKind::Fig4 => "fig4",
            QueryKind::Prop2 => "prop2",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// Rejects unknown query names.
    pub fn parse(name: &str) -> Result<Self, WireError> {
        match name {
            "thm1" => Ok(QueryKind::Thm1),
            "omission" => Ok(QueryKind::Omission),
            "thm3" => Ok(QueryKind::Thm3),
            "fig4" => Ok(QueryKind::Fig4),
            "prop2" => Ok(QueryKind::Prop2),
            other => Err(WireError::new(format!("unknown query {other:?}"))),
        }
    }
}

/// A custom exhaustive scope for a [`QueryKind::Thm1`] or
/// [`QueryKind::Omission`] job: the fields of
/// `adversary::enumerate::EnumerationConfig` plus the agreement degree.
/// Omission jobs reuse the same frame — `max_crash_round` carries the
/// omission round horizon and `partial_delivery` is ignored (the omission
/// space has no crash-delivery choice to make).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScopeSpec {
    /// Number of processes.
    pub n: usize,
    /// Failure bound.
    pub t: usize,
    /// Agreement degree.
    pub k: usize,
    /// Largest initial value.
    pub max_value: u64,
    /// Latest round in which a crash may occur.
    pub max_crash_round: u32,
    /// Whether crashing processes may deliver to arbitrary subsets.
    pub partial_delivery: bool,
}

impl ToWire for ScopeSpec {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("n".into(), Value::Int(self.n as i128)),
            ("t".into(), Value::Int(self.t as i128)),
            ("k".into(), Value::Int(self.k as i128)),
            ("max_value".into(), Value::Int(self.max_value as i128)),
            ("max_crash_round".into(), Value::Int(self.max_crash_round as i128)),
            ("partial_delivery".into(), Value::Bool(self.partial_delivery)),
        ])
    }
}

impl FromWire for ScopeSpec {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(ScopeSpec {
            n: value.field("n")?.as_usize("scope.n")?,
            t: value.field("t")?.as_usize("scope.t")?,
            k: value.field("k")?.as_usize("scope.k")?,
            max_value: value.field("max_value")?.as_u64("scope.max_value")?,
            max_crash_round: value.field("max_crash_round")?.as_u32("scope.max_crash_round")?,
            partial_delivery: value.field("partial_delivery")?.as_bool("scope.partial_delivery")?,
        })
    }
}

/// A submitted sweep job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen identifier echoed in every frame of the job.
    pub id: u64,
    /// The query to run.
    pub query: QueryKind,
    /// Optional custom scope (Theorem 1 and omission jobs only; the
    /// built-in cases are run when absent).
    pub scope: Option<ScopeSpec>,
    /// Shard count; `0` lets the daemon pick `4 × workers`.
    pub shards: usize,
    /// Seed for seeded scenario sources (part of the job fingerprint).
    pub seed: u64,
    /// Whether the daemon may read and populate its shard-accumulator
    /// cache for this job (`false` forces a fully cold execution and
    /// leaves the cache untouched).
    pub shard_cache: bool,
}

impl ToWire for JobSpec {
    fn to_wire(&self) -> Value {
        let mut fields = vec![
            ("type".into(), Value::Str("job".into())),
            ("id".into(), Value::Int(self.id as i128)),
            ("query".into(), Value::Str(self.query.name().into())),
        ];
        if let Some(scope) = &self.scope {
            fields.push(("scope".into(), scope.to_wire()));
        }
        fields.push(("shards".into(), Value::Int(self.shards as i128)));
        fields.push(("seed".into(), Value::Int(self.seed as i128)));
        fields.push(("shard_cache".into(), Value::Bool(self.shard_cache)));
        Value::Object(fields)
    }
}

impl FromWire for JobSpec {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(JobSpec {
            id: value.field("id")?.as_u64("job.id")?,
            query: QueryKind::parse(value.field("query")?.as_str("job.query")?)?,
            scope: match value.get("scope") {
                Some(scope) => Some(ScopeSpec::from_wire(scope)?),
                None => None,
            },
            shards: value.field("shards")?.as_usize("job.shards")?,
            seed: value.field("seed")?.as_u64("job.seed")?,
            shard_cache: value.field("shard_cache")?.as_bool("job.shard_cache")?,
        })
    }
}

/// One shard of one case, described self-containedly so a remote worker
/// can rebuild the scenario source and execute the fold with nothing but
/// this frame.  The coordinator always sends the explicit scope of the
/// case (even for built-in Theorem 1 cases), so worker and coordinator
/// cannot disagree about what the shard covers.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// The query the shard belongs to.
    pub query: QueryKind,
    /// Sub-sweep index within the job (selects the built-in case for
    /// Theorem 3).
    pub case: usize,
    /// Explicit scope of the case (Theorem 1 only; `None` for the seeded
    /// and fixed-family queries, whose scopes are built in).
    pub scope: Option<ScopeSpec>,
    /// Seed for seeded scenario sources.
    pub seed: u64,
    /// Shard count of the case — the worker recomputes the identical
    /// block-aligned partition from it.
    pub shards: usize,
    /// Which shard of that partition to execute.
    pub shard: usize,
}

impl ToWire for TaskSpec {
    fn to_wire(&self) -> Value {
        let mut fields = vec![
            ("query".into(), Value::Str(self.query.name().into())),
            ("case".into(), Value::Int(self.case as i128)),
        ];
        if let Some(scope) = &self.scope {
            fields.push(("scope".into(), scope.to_wire()));
        }
        fields.push(("seed".into(), Value::Int(self.seed as i128)));
        fields.push(("shards".into(), Value::Int(self.shards as i128)));
        fields.push(("shard".into(), Value::Int(self.shard as i128)));
        Value::Object(fields)
    }
}

impl FromWire for TaskSpec {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(TaskSpec {
            query: QueryKind::parse(value.field("query")?.as_str("task.query")?)?,
            case: value.field("case")?.as_usize("task.case")?,
            scope: match value.get("scope") {
                Some(scope) => Some(ScopeSpec::from_wire(scope)?),
                None => None,
            },
            seed: value.field("seed")?.as_u64("task.seed")?,
            shards: value.field("shards")?.as_usize("task.shards")?,
            shard: value.field("shard")?.as_usize("task.shard")?,
        })
    }
}

/// Server → worker: one shard to execute.  The `(lease, generation)` pair
/// identifies the grant; a completion carrying a stale generation (the
/// lease expired and was re-queued meanwhile) is dropped by the
/// coordinator, which is what makes dead-worker re-queue idempotent.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseGrant {
    /// Lease id, unique per daemon process.
    pub lease: u64,
    /// Grant generation — bumped every time the same shard is re-leased.
    pub generation: u64,
    /// What to execute.
    pub task: TaskSpec,
}

impl ToWire for LeaseGrant {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("type".into(), Value::Str("lease".into())),
            ("lease".into(), Value::Int(self.lease as i128)),
            ("generation".into(), Value::Int(self.generation as i128)),
            ("task".into(), self.task.to_wire()),
        ])
    }
}

impl FromWire for LeaseGrant {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(LeaseGrant {
            lease: value.field("lease")?.as_u64("lease.lease")?,
            generation: value.field("generation")?.as_u64("lease.generation")?,
            task: TaskSpec::from_wire(value.field("task")?)?,
        })
    }
}

/// Worker → server: a leased shard finished; `payload` is the wire
/// rendering of the per-shard reducer accumulator (lossless — the
/// accumulators are integers and booleans throughout, so a remote fold
/// merges bit-identically to a local one).
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseDone {
    /// Lease id echoed from the grant.
    pub lease: u64,
    /// Generation echoed from the grant.
    pub generation: u64,
    /// The worker id that executed the shard.
    pub worker: u64,
    /// First scenario index the worker actually covered.
    pub start: usize,
    /// Past-the-end scenario index the worker actually covered.
    pub end: usize,
    /// Execution statistics of the shard.
    pub stats: SweepStats,
    /// The accumulator, as rendered by its `ToWire` impl.
    pub payload: Value,
}

impl ToWire for LeaseDone {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("type".into(), Value::Str("lease-done".into())),
            ("lease".into(), Value::Int(self.lease as i128)),
            ("generation".into(), Value::Int(self.generation as i128)),
            ("worker".into(), Value::Int(self.worker as i128)),
            ("start".into(), Value::Int(self.start as i128)),
            ("end".into(), Value::Int(self.end as i128)),
            ("stats".into(), self.stats.to_wire()),
            ("payload".into(), self.payload.clone()),
        ])
    }
}

impl FromWire for LeaseDone {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(LeaseDone {
            lease: value.field("lease")?.as_u64("lease-done.lease")?,
            generation: value.field("generation")?.as_u64("lease-done.generation")?,
            worker: value.field("worker")?.as_u64("lease-done.worker")?,
            start: value.field("start")?.as_usize("lease-done.start")?,
            end: value.field("end")?.as_usize("lease-done.end")?,
            stats: SweepStats::from_wire(value.field("stats")?)?,
            payload: value.field("payload")?.clone(),
        })
    }
}

/// Worker → server: a leased shard could not be executed (the model
/// rejected the task's parameters).  Deterministic failures re-queue like
/// crashes do, and surface as typed errors once the local fallback hits
/// the same rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseFailed {
    /// Lease id echoed from the grant.
    pub lease: u64,
    /// Generation echoed from the grant.
    pub generation: u64,
    /// Human-readable description of the rejection.
    pub message: String,
}

impl ToWire for LeaseFailed {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("type".into(), Value::Str("lease-failed".into())),
            ("lease".into(), Value::Int(self.lease as i128)),
            ("generation".into(), Value::Int(self.generation as i128)),
            ("message".into(), Value::Str(self.message.clone())),
        ])
    }
}

impl FromWire for LeaseFailed {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(LeaseFailed {
            lease: value.field("lease")?.as_u64("lease-failed.lease")?,
            generation: value.field("generation")?.as_u64("lease-failed.generation")?,
            message: value.field("message")?.as_str("lease-failed.message")?.to_owned(),
        })
    }
}

impl ToWire for SweepStats {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("scenarios".into(), Value::Int(self.scenarios as i128)),
            ("cache_hits".into(), Value::Int(self.cache.hits as i128)),
            ("cache_misses".into(), Value::Int(self.cache.misses as i128)),
            ("runs_simulated".into(), Value::Int(self.runs.simulated as i128)),
            ("runs_reused".into(), Value::Int(self.runs.reused as i128)),
            ("cursor_materialized".into(), Value::Int(self.cursor.materialized as i128)),
            ("cursor_stepped".into(), Value::Int(self.cursor.stepped as i128)),
            ("patterns_unranked".into(), Value::Int(self.cursor.patterns_unranked as i128)),
        ])
    }
}

impl FromWire for SweepStats {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(SweepStats {
            scenarios: value.field("scenarios")?.as_u64("stats.scenarios")?,
            cache: knowledge::CacheStats {
                hits: value.field("cache_hits")?.as_u64("stats.cache_hits")?,
                misses: value.field("cache_misses")?.as_u64("stats.cache_misses")?,
            },
            runs: set_consensus::RunReuseStats {
                simulated: value.field("runs_simulated")?.as_u64("stats.runs_simulated")?,
                reused: value.field("runs_reused")?.as_u64("stats.runs_reused")?,
            },
            cursor: CursorStats {
                materialized: value
                    .field("cursor_materialized")?
                    .as_u64("stats.cursor_materialized")?,
                stepped: value.field("cursor_stepped")?.as_u64("stats.cursor_stepped")?,
                patterns_unranked: value
                    .field("patterns_unranked")?
                    .as_u64("stats.patterns_unranked")?,
            },
        })
    }
}

/// One shard of a job finished (either replayed from the accumulator cache
/// or executed on the worker pool).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardDone {
    /// Job id.
    pub job: u64,
    /// Sub-sweep index within the job (Theorem 1 runs one per `(n, t, k)`
    /// case).
    pub case: usize,
    /// Number of sub-sweeps in the job.
    pub cases: usize,
    /// Shard index within the case.
    pub shard: usize,
    /// Shard count of the case.
    pub shards: usize,
    /// First scenario index of the shard.
    pub start: usize,
    /// Past-the-end scenario index of the shard.
    pub end: usize,
    /// `true` if the accumulator was replayed from the cache (its `stats`
    /// are then all zero).
    pub cached: bool,
    /// Execution statistics of this shard alone.
    pub stats: SweepStats,
}

impl ToWire for ShardDone {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("type".into(), Value::Str("shard-done".into())),
            ("job".into(), Value::Int(self.job as i128)),
            ("case".into(), Value::Int(self.case as i128)),
            ("cases".into(), Value::Int(self.cases as i128)),
            ("shard".into(), Value::Int(self.shard as i128)),
            ("shards".into(), Value::Int(self.shards as i128)),
            ("start".into(), Value::Int(self.start as i128)),
            ("end".into(), Value::Int(self.end as i128)),
            ("cached".into(), Value::Bool(self.cached)),
            ("stats".into(), self.stats.to_wire()),
        ])
    }
}

impl FromWire for ShardDone {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(ShardDone {
            job: value.field("job")?.as_u64("shard-done.job")?,
            case: value.field("case")?.as_usize("shard-done.case")?,
            cases: value.field("cases")?.as_usize("shard-done.cases")?,
            shard: value.field("shard")?.as_usize("shard-done.shard")?,
            shards: value.field("shards")?.as_usize("shard-done.shards")?,
            start: value.field("start")?.as_usize("shard-done.start")?,
            end: value.field("end")?.as_usize("shard-done.end")?,
            cached: value.field("cached")?.as_bool("shard-done.cached")?,
            stats: SweepStats::from_wire(value.field("stats")?)?,
        })
    }
}

/// The fold over the completed *prefix* of a case's shards grew — the
/// streaming preview of the final fold.  (Only a contiguous prefix can be
/// previewed: the `Reducer` laws cover merging adjacent slices in order,
/// nothing else.)
#[derive(Debug, Clone, PartialEq)]
pub struct Partial {
    /// Job id.
    pub job: u64,
    /// Sub-sweep index within the job.
    pub case: usize,
    /// Shards of the contiguous completed prefix.
    pub shards_done: usize,
    /// Shard count of the case.
    pub shards: usize,
    /// Scenarios covered by the prefix.
    pub scenarios_done: u64,
    /// Query-specific rendering of the prefix fold.
    pub fold: Value,
}

impl ToWire for Partial {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("type".into(), Value::Str("partial".into())),
            ("job".into(), Value::Int(self.job as i128)),
            ("case".into(), Value::Int(self.case as i128)),
            ("shards_done".into(), Value::Int(self.shards_done as i128)),
            ("shards".into(), Value::Int(self.shards as i128)),
            ("scenarios_done".into(), Value::Int(self.scenarios_done as i128)),
            ("fold".into(), self.fold.clone()),
        ])
    }
}

impl FromWire for Partial {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(Partial {
            job: value.field("job")?.as_u64("partial.job")?,
            case: value.field("case")?.as_usize("partial.case")?,
            shards_done: value.field("shards_done")?.as_usize("partial.shards_done")?,
            shards: value.field("shards")?.as_usize("partial.shards")?,
            scenarios_done: value.field("scenarios_done")?.as_u64("partial.scenarios_done")?,
            fold: value.field("fold")?.clone(),
        })
    }
}

/// The final result of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// Theorem 1 rows.
    Thm1(Vec<Thm1Case>),
    /// Omission-scan rows (the Theorem 1 row shape over the send-omission
    /// space).
    Omission(Vec<Thm1Case>),
    /// Theorem 3 rows.
    Thm3(Vec<Thm3Row>),
    /// Fig. 4 rows.
    Fig4(Vec<Fig4Row>),
    /// The Proposition 2 report.
    Prop2(Prop2Report),
}

impl ToWire for Thm1Case {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("n".into(), Value::Int(self.n as i128)),
            ("t".into(), Value::Int(self.t as i128)),
            ("k".into(), Value::Int(self.k as i128)),
            (
                "adversaries".into(),
                // Scope sizes are bounded by the engine (ExhaustiveSource
                // rejects spaces beyond usize::MAX), so they always fit the
                // wire's i128 integer model.
                Value::Int(i128::try_from(self.adversaries).expect("scope size fits i128")),
            ),
            ("correctness_violations".into(), Value::Int(self.correctness_violations as i128)),
            ("beaten_by".into(), Value::Int(self.beaten_by as i128)),
            ("structure_violations".into(), Value::Int(self.structure_violations as i128)),
        ])
    }
}

impl FromWire for Thm1Case {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(Thm1Case {
            n: value.field("n")?.as_usize("thm1.n")?,
            t: value.field("t")?.as_usize("thm1.t")?,
            k: value.field("k")?.as_usize("thm1.k")?,
            adversaries: value.field("adversaries")?.as_u128("thm1.adversaries")?,
            correctness_violations: value
                .field("correctness_violations")?
                .as_u64("thm1.correctness_violations")?,
            beaten_by: value.field("beaten_by")?.as_usize("thm1.beaten_by")?,
            structure_violations: value
                .field("structure_violations")?
                .as_u64("thm1.structure_violations")?,
        })
    }
}

impl ToWire for Thm3Row {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("n".into(), Value::Int(self.n as i128)),
            ("t".into(), Value::Int(self.t as i128)),
            ("k".into(), Value::Int(self.k as i128)),
            ("f".into(), Value::Int(self.f as i128)),
            ("runs".into(), Value::Int(self.runs as i128)),
            ("worst".into(), Value::Int(self.worst as i128)),
            ("bound".into(), Value::Int(self.bound as i128)),
            ("violations".into(), Value::Int(self.violations as i128)),
        ])
    }
}

impl FromWire for Thm3Row {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(Thm3Row {
            n: value.field("n")?.as_usize("thm3.n")?,
            t: value.field("t")?.as_usize("thm3.t")?,
            k: value.field("k")?.as_usize("thm3.k")?,
            f: value.field("f")?.as_usize("thm3.f")?,
            runs: value.field("runs")?.as_u64("thm3.runs")?,
            worst: value.field("worst")?.as_u32("thm3.worst")?,
            bound: value.field("bound")?.as_u32("thm3.bound")?,
            violations: value.field("violations")?.as_u64("thm3.violations")?,
        })
    }
}

impl ToWire for Fig4Row {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("k".into(), Value::Int(self.k as i128)),
            ("t".into(), Value::Int(self.t as i128)),
            ("n".into(), Value::Int(self.n as i128)),
            ("bound".into(), Value::Int(self.bound as i128)),
            (
                "latest".into(),
                Value::Array(self.latest.iter().map(|&l| Value::Int(l as i128)).collect()),
            ),
            ("violations".into(), Value::Int(self.violations as i128)),
        ])
    }
}

impl FromWire for Fig4Row {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        let latest_values = value.field("latest")?.as_array("fig4.latest")?;
        if latest_values.len() != 4 {
            return Err(WireError::new("fig4.latest must have exactly 4 entries"));
        }
        let mut latest = [0u32; 4];
        for (slot, entry) in latest_values.iter().enumerate() {
            latest[slot] = entry.as_u32("fig4.latest entry")?;
        }
        Ok(Fig4Row {
            k: value.field("k")?.as_usize("fig4.k")?,
            t: value.field("t")?.as_usize("fig4.t")?,
            n: value.field("n")?.as_usize("fig4.n")?,
            bound: value.field("bound")?.as_usize("fig4.bound")?,
            latest,
            violations: value.field("violations")?.as_u64("fig4.violations")?,
        })
    }
}

impl ToWire for Prop2ExhaustiveRow {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("n".into(), Value::Int(self.n as i128)),
            ("t".into(), Value::Int(self.t as i128)),
            ("states".into(), Value::Int(self.states as i128)),
            ("with_capacity".into(), Value::Int(self.with_capacity as i128)),
            ("connected".into(), Value::Int(self.connected as i128)),
            ("counterexamples".into(), Value::Int(self.counterexamples as i128)),
        ])
    }
}

impl FromWire for Prop2ExhaustiveRow {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(Prop2ExhaustiveRow {
            n: value.field("n")?.as_usize("prop2.n")?,
            t: value.field("t")?.as_usize("prop2.t")?,
            states: value.field("states")?.as_usize("prop2.states")?,
            with_capacity: value.field("with_capacity")?.as_usize("prop2.with_capacity")?,
            connected: value.field("connected")?.as_usize("prop2.connected")?,
            counterexamples: value.field("counterexamples")?.as_usize("prop2.counterexamples")?,
        })
    }
}

fn usize_array(values: &[usize]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Int(v as i128)).collect())
}

fn usize_vec(value: &Value, what: &str) -> Result<Vec<usize>, WireError> {
    value.as_array(what)?.iter().map(|entry| entry.as_usize(what)).collect()
}

impl ToWire for Prop2Targeted {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("hidden_capacity".into(), Value::Int(self.hidden_capacity as i128)),
            ("executions".into(), Value::Int(self.executions as i128)),
            ("star_states".into(), Value::Int(self.star_states as i128)),
            ("star_facets".into(), Value::Int(self.star_facets as i128)),
            ("star_betti".into(), usize_array(&self.star_betti)),
            ("star_connected".into(), Value::Bool(self.star_connected)),
            ("link_betti".into(), usize_array(&self.link_betti)),
            ("link_connected".into(), Value::Bool(self.link_connected)),
        ])
    }
}

impl FromWire for Prop2Targeted {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(Prop2Targeted {
            hidden_capacity: value.field("hidden_capacity")?.as_usize("prop2.hidden_capacity")?,
            executions: value.field("executions")?.as_usize("prop2.executions")?,
            star_states: value.field("star_states")?.as_usize("prop2.star_states")?,
            star_facets: value.field("star_facets")?.as_usize("prop2.star_facets")?,
            star_betti: usize_vec(value.field("star_betti")?, "prop2.star_betti")?,
            star_connected: value.field("star_connected")?.as_bool("prop2.star_connected")?,
            link_betti: usize_vec(value.field("link_betti")?, "prop2.link_betti")?,
            link_connected: value.field("link_connected")?.as_bool("prop2.link_connected")?,
        })
    }
}

impl ToWire for Prop2Report {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            (
                "exhaustive".into(),
                Value::Array(self.exhaustive.iter().map(ToWire::to_wire).collect()),
            ),
            ("targeted".into(), self.targeted.to_wire()),
        ])
    }
}

impl FromWire for Prop2Report {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(Prop2Report {
            exhaustive: value
                .field("exhaustive")?
                .as_array("prop2.exhaustive")?
                .iter()
                .map(Prop2ExhaustiveRow::from_wire)
                .collect::<Result<_, _>>()?,
            targeted: Prop2Targeted::from_wire(value.field("targeted")?)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Per-shard accumulators — the payloads of the persisted cache store.
// These never travel on the socket; they share the wire codec so one
// `Value` model (and one torn-input discipline) covers both surfaces.
// ---------------------------------------------------------------------------

impl ToWire for Thm1Outcome {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("violations".into(), Value::Int(self.violations as i128)),
            ("beaten".into(), Value::Array(self.beaten.iter().map(|&b| Value::Bool(b)).collect())),
            ("structure".into(), Value::Int(self.structure as i128)),
        ])
    }
}

impl FromWire for Thm1Outcome {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        let beaten_values = value.field("beaten")?.as_array("thm1-acc.beaten")?;
        if beaten_values.len() != 2 {
            return Err(WireError::new("thm1-acc.beaten must have exactly 2 entries"));
        }
        let mut beaten = [false; 2];
        for (slot, entry) in beaten_values.iter().enumerate() {
            beaten[slot] = entry.as_bool("thm1-acc.beaten entry")?;
        }
        Ok(Thm1Outcome {
            violations: value.field("violations")?.as_u64("thm1-acc.violations")?,
            beaten,
            structure: value.field("structure")?.as_u64("thm1-acc.structure")?,
        })
    }
}

impl ToWire for Thm3Acc {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            (
                "per_f".into(),
                Value::Array(
                    self.per_f
                        .iter()
                        .map(|(&f, &(worst, runs))| {
                            Value::Array(vec![
                                Value::Int(f as i128),
                                Value::Int(worst as i128),
                                Value::Int(runs as i128),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("violations".into(), Value::Int(self.violations as i128)),
        ])
    }
}

impl FromWire for Thm3Acc {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        let mut per_f = std::collections::BTreeMap::new();
        for entry in value.field("per_f")?.as_array("thm3-acc.per_f")? {
            let triple = entry.as_array("thm3-acc.per_f entry")?;
            if triple.len() != 3 {
                return Err(WireError::new("thm3-acc.per_f entries must be [f, worst, runs]"));
            }
            per_f.insert(
                triple[0].as_usize("thm3-acc.per_f f")?,
                (
                    triple[1].as_u32("thm3-acc.per_f worst")?,
                    triple[2].as_u64("thm3-acc.per_f runs")?,
                ),
            );
        }
        Ok(Thm3Acc { per_f, violations: value.field("violations")?.as_u64("thm3-acc.violations")? })
    }
}

impl ToWire for Fig4Acc {
    fn to_wire(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(&index, &(latest, violations))| {
                    let mut row = vec![Value::Int(index as i128)];
                    row.extend(latest.iter().map(|&l| Value::Int(l as i128)));
                    row.push(Value::Int(violations as i128));
                    Value::Array(row)
                })
                .collect(),
        )
    }
}

impl FromWire for Fig4Acc {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        let mut acc = Fig4Acc::new();
        for entry in value.as_array("fig4-acc")? {
            let row = entry.as_array("fig4-acc entry")?;
            if row.len() != 6 {
                return Err(WireError::new(
                    "fig4-acc entries must be [index, l0, l1, l2, l3, violations]",
                ));
            }
            let mut latest = [0u32; 4];
            for (slot, cell) in row[1..5].iter().enumerate() {
                latest[slot] = cell.as_u32("fig4-acc latest entry")?;
            }
            acc.insert(
                row[0].as_usize("fig4-acc index")?,
                (latest, row[5].as_u64("fig4-acc violations")?),
            );
        }
        Ok(acc)
    }
}

impl ToWire for QueryResult {
    fn to_wire(&self) -> Value {
        let (query, payload) = match self {
            QueryResult::Thm1(rows) => {
                ("thm1", Value::Array(rows.iter().map(ToWire::to_wire).collect()))
            }
            QueryResult::Omission(rows) => {
                ("omission", Value::Array(rows.iter().map(ToWire::to_wire).collect()))
            }
            QueryResult::Thm3(rows) => {
                ("thm3", Value::Array(rows.iter().map(ToWire::to_wire).collect()))
            }
            QueryResult::Fig4(rows) => {
                ("fig4", Value::Array(rows.iter().map(ToWire::to_wire).collect()))
            }
            QueryResult::Prop2(report) => ("prop2", report.to_wire()),
        };
        Value::Object(vec![("query".into(), Value::Str(query.into())), ("rows".into(), payload)])
    }
}

impl FromWire for QueryResult {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        let rows = value.field("rows")?;
        match QueryKind::parse(value.field("query")?.as_str("result.query")?)? {
            QueryKind::Thm1 => Ok(QueryResult::Thm1(
                rows.as_array("thm1 rows")?
                    .iter()
                    .map(Thm1Case::from_wire)
                    .collect::<Result<_, _>>()?,
            )),
            QueryKind::Omission => Ok(QueryResult::Omission(
                rows.as_array("omission rows")?
                    .iter()
                    .map(Thm1Case::from_wire)
                    .collect::<Result<_, _>>()?,
            )),
            QueryKind::Thm3 => Ok(QueryResult::Thm3(
                rows.as_array("thm3 rows")?
                    .iter()
                    .map(Thm3Row::from_wire)
                    .collect::<Result<_, _>>()?,
            )),
            QueryKind::Fig4 => Ok(QueryResult::Fig4(
                rows.as_array("fig4 rows")?
                    .iter()
                    .map(Fig4Row::from_wire)
                    .collect::<Result<_, _>>()?,
            )),
            QueryKind::Prop2 => Ok(QueryResult::Prop2(Prop2Report::from_wire(rows)?)),
        }
    }
}

/// The terminal success frame of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDone {
    /// Job id.
    pub job: u64,
    /// The final, fully merged result.
    pub result: QueryResult,
    /// Statistics of the **executed** work only — a fully cache-warm job
    /// reports zero scenarios here (the acceptance signal of the
    /// incremental cache).
    pub stats: SweepStats,
    /// Shards the job was partitioned into, over all cases.
    pub shards_total: u64,
    /// Shards replayed from the accumulator cache.
    pub shards_cached: u64,
    /// Shards executed on the worker pool.
    pub shards_executed: u64,
    /// Remote workers registered when the job finished.
    pub fleet_workers: u64,
    /// Of the executed shards, how many ran on remote workers.
    pub shards_remote: u64,
    /// Lease re-queues the job survived (expired or failed grants that
    /// were re-leased or fell back to local execution).
    pub leases_requeued: u64,
    /// Server-side wall time of the job in milliseconds.
    pub wall_ms: f64,
}

impl ToWire for JobDone {
    fn to_wire(&self) -> Value {
        Value::Object(vec![
            ("type".into(), Value::Str("job-done".into())),
            ("job".into(), Value::Int(self.job as i128)),
            ("result".into(), self.result.to_wire()),
            ("stats".into(), self.stats.to_wire()),
            ("shards_total".into(), Value::Int(self.shards_total as i128)),
            ("shards_cached".into(), Value::Int(self.shards_cached as i128)),
            ("shards_executed".into(), Value::Int(self.shards_executed as i128)),
            ("fleet_workers".into(), Value::Int(self.fleet_workers as i128)),
            ("shards_remote".into(), Value::Int(self.shards_remote as i128)),
            ("leases_requeued".into(), Value::Int(self.leases_requeued as i128)),
            ("wall_ms".into(), Value::Float(self.wall_ms)),
        ])
    }
}

impl FromWire for JobDone {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(JobDone {
            job: value.field("job")?.as_u64("job-done.job")?,
            result: QueryResult::from_wire(value.field("result")?)?,
            stats: SweepStats::from_wire(value.field("stats")?)?,
            shards_total: value.field("shards_total")?.as_u64("job-done.shards_total")?,
            shards_cached: value.field("shards_cached")?.as_u64("job-done.shards_cached")?,
            shards_executed: value.field("shards_executed")?.as_u64("job-done.shards_executed")?,
            fleet_workers: value.field("fleet_workers")?.as_u64("job-done.fleet_workers")?,
            shards_remote: value.field("shards_remote")?.as_u64("job-done.shards_remote")?,
            leases_requeued: value.field("leases_requeued")?.as_u64("job-done.leases_requeued")?,
            wall_ms: value.field("wall_ms")?.as_f64("job-done.wall_ms")?,
        })
    }
}

/// Machine-readable classification of an [`ErrorFrame`] — what failed, so
/// clients can react (retry a [`ErrorKind::QueueFull`] rejection, treat
/// [`ErrorKind::Cancelled`] as expected) without parsing the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The request itself violated the protocol (malformed frame, custom
    /// scope on the wrong query, …).
    Protocol,
    /// The daemon's bounded job queue was full; resubmit later.
    QueueFull,
    /// The job was revoked by a `cancel` frame.
    Cancelled,
    /// A cached/fresh accumulator set failed the shard-merge
    /// preconditions (out-of-order or gapped partition).
    Merge,
    /// The sweep engine rejected the job's parameters mid-execution.
    Model,
    /// The connection failed the shared-secret handshake on a
    /// token-protected TCP endpoint.
    Unauthorized,
    /// Anything else server-side.
    Internal,
}

impl ErrorKind {
    /// The wire name of the kind.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::QueueFull => "queue-full",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::Merge => "merge",
            ErrorKind::Model => "model",
            ErrorKind::Unauthorized => "unauthorized",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses a wire name.  Unknown names (a newer server) and absent
    /// kinds (an older server) both map to [`ErrorKind::Internal`] rather
    /// than failing: the error frame must stay decodable across versions.
    pub fn parse(name: &str) -> Self {
        match name {
            "protocol" => ErrorKind::Protocol,
            "queue-full" => ErrorKind::QueueFull,
            "cancelled" => ErrorKind::Cancelled,
            "merge" => ErrorKind::Merge,
            "model" => ErrorKind::Model,
            "unauthorized" => ErrorKind::Unauthorized,
            _ => ErrorKind::Internal,
        }
    }
}

/// The terminal failure frame of a job (or of a malformed request outside
/// any job).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Job id, when the failure belongs to one.
    pub job: Option<u64>,
    /// What class of failure this is.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl ToWire for ErrorFrame {
    fn to_wire(&self) -> Value {
        let mut fields = vec![("type".into(), Value::Str("error".into()))];
        if let Some(job) = self.job {
            fields.push(("job".into(), Value::Int(job as i128)));
        }
        fields.push(("kind".into(), Value::Str(self.kind.name().into())));
        fields.push(("message".into(), Value::Str(self.message.clone())));
        Value::Object(fields)
    }
}

impl FromWire for ErrorFrame {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        Ok(ErrorFrame {
            job: match value.get("job") {
                Some(job) => Some(job.as_u64("error.job")?),
                None => None,
            },
            kind: match value.get("kind") {
                Some(kind) => ErrorKind::parse(kind.as_str("error.kind")?),
                None => ErrorKind::Internal,
            },
            message: value.field("message")?.as_str("error.message")?.to_owned(),
        })
    }
}

impl ToWire for MetricsSnapshot {
    fn to_wire(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| Value::Array(vec![Value::Str(name.clone()), Value::Int(*v as i128)]))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(name, v)| Value::Array(vec![Value::Str(name.clone()), Value::Int(*v as i128)]))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                Value::Object(vec![
                    ("name".into(), Value::Str(h.name.clone())),
                    ("count".into(), Value::Int(h.count as i128)),
                    ("sum_us".into(), Value::Int(h.sum_us as i128)),
                    ("max_us".into(), Value::Int(h.max_us as i128)),
                    ("p50_us".into(), Value::Float(h.p50_us)),
                    ("p95_us".into(), Value::Float(h.p95_us)),
                    ("p99_us".into(), Value::Float(h.p99_us)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("type".into(), Value::Str("stats-result".into())),
            ("counters".into(), Value::Array(counters)),
            ("gauges".into(), Value::Array(gauges)),
            ("histograms".into(), Value::Array(histograms)),
        ])
    }
}

/// Decodes one `[name, value]` metric pair.
fn metric_pair(entry: &Value, what: &str) -> Result<(String, i128), WireError> {
    let pair = entry.as_array(what)?;
    if pair.len() != 2 {
        return Err(WireError::new(format!("{what} must be a [name, value] pair")));
    }
    Ok((pair[0].as_str(what)?.to_owned(), pair[1].as_i128(what)?))
}

impl FromWire for MetricsSnapshot {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        let counters = value
            .field("counters")?
            .as_array("stats-result.counters")?
            .iter()
            .map(|entry| {
                let (name, v) = metric_pair(entry, "stats-result counter")?;
                let v = u64::try_from(v)
                    .map_err(|_| WireError::new("stats-result counter out of u64 range"))?;
                Ok((name, v))
            })
            .collect::<Result<_, WireError>>()?;
        let gauges = value
            .field("gauges")?
            .as_array("stats-result.gauges")?
            .iter()
            .map(|entry| {
                let (name, v) = metric_pair(entry, "stats-result gauge")?;
                let v = i64::try_from(v)
                    .map_err(|_| WireError::new("stats-result gauge out of i64 range"))?;
                Ok((name, v))
            })
            .collect::<Result<_, WireError>>()?;
        let histograms = value
            .field("histograms")?
            .as_array("stats-result.histograms")?
            .iter()
            .map(|h| {
                Ok(HistogramSnapshot {
                    name: h.field("name")?.as_str("histogram.name")?.to_owned(),
                    count: h.field("count")?.as_u64("histogram.count")?,
                    sum_us: h.field("sum_us")?.as_u64("histogram.sum_us")?,
                    max_us: h.field("max_us")?.as_u64("histogram.max_us")?,
                    p50_us: h.field("p50_us")?.as_f64("histogram.p50_us")?,
                    p95_us: h.field("p95_us")?.as_f64("histogram.p95_us")?,
                    p99_us: h.field("p99_us")?.as_f64("histogram.p99_us")?,
                })
            })
            .collect::<Result<_, WireError>>()?;
        Ok(MetricsSnapshot { counters, gauges, histograms })
    }
}

/// One frame of the protocol — the tagged union that travels as one JSON
/// line.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: run this job.
    Job(JobSpec),
    /// Client → server: revoke a queued or running job by its id.
    Cancel {
        /// Id of the job to revoke.
        job: u64,
    },
    /// Client → server: finish queued jobs, then exit.
    Shutdown,
    /// Server → client: shutdown acknowledged.
    ShuttingDown,
    /// Server → client: cancel acknowledged.  `found` reports whether the
    /// job was known (queued or running) when the cancel arrived; the
    /// revoked job itself still terminates with an
    /// [`ErrorKind::Cancelled`] error frame on its own connection.
    CancelAck {
        /// Id echoed from the cancel request.
        job: u64,
        /// Whether the job was queued or running.
        found: bool,
    },
    /// Server → client: one shard finished.
    ShardDone(ShardDone),
    /// Server → client: the completed prefix fold grew.
    Partial(Partial),
    /// Server → client: the job finished.
    JobDone(JobDone),
    /// Server → client: the job (or request) failed.
    Error(ErrorFrame),
    /// Client → server: shared-secret auth handshake.  Required as the
    /// first frame on a token-protected TCP endpoint; ignored elsewhere.
    Hello {
        /// The shared secret.
        token: String,
    },
    /// Worker → server: join the fleet (this connection becomes a worker
    /// session and stops accepting job frames).
    Register,
    /// Server → worker: registration accepted.
    Registered {
        /// Assigned worker id, echoed in heartbeats and completions.
        worker: u64,
        /// Lease TTL the coordinator enforces, in milliseconds.
        lease_ttl_ms: u64,
        /// Heartbeat cadence the worker should keep, in milliseconds.
        heartbeat_ms: u64,
    },
    /// Worker → server: still alive (extends the worker's TTL deadline).
    Heartbeat {
        /// The worker id from `registered`.
        worker: u64,
    },
    /// Server → worker: execute this shard.
    Lease(LeaseGrant),
    /// Worker → server: the leased shard finished.
    LeaseDone(LeaseDone),
    /// Server → worker: a grant was withdrawn (its TTL lapsed before the
    /// completion arrived); any in-flight result for it will be dropped.
    LeaseRevoke {
        /// Lease id of the withdrawn grant.
        lease: u64,
        /// Generation of the withdrawn grant.
        generation: u64,
    },
    /// Worker → server: the leased shard was rejected by the model.
    LeaseFailed(LeaseFailed),
    /// Client → server: dump the daemon's metrics snapshot.
    Stats,
    /// Server → client: the metrics snapshot (the answer to
    /// [`Frame::Stats`]).
    StatsResult(MetricsSnapshot),
}

impl ToWire for Frame {
    fn to_wire(&self) -> Value {
        match self {
            Frame::Job(spec) => spec.to_wire(),
            Frame::Cancel { job } => Value::Object(vec![
                ("type".into(), Value::Str("cancel".into())),
                ("job".into(), Value::Int(*job as i128)),
            ]),
            Frame::Shutdown => Value::Object(vec![("type".into(), Value::Str("shutdown".into()))]),
            Frame::ShuttingDown => {
                Value::Object(vec![("type".into(), Value::Str("shutting-down".into()))])
            }
            Frame::CancelAck { job, found } => Value::Object(vec![
                ("type".into(), Value::Str("cancel-ack".into())),
                ("job".into(), Value::Int(*job as i128)),
                ("found".into(), Value::Bool(*found)),
            ]),
            Frame::ShardDone(frame) => frame.to_wire(),
            Frame::Partial(frame) => frame.to_wire(),
            Frame::JobDone(frame) => frame.to_wire(),
            Frame::Error(frame) => frame.to_wire(),
            Frame::Hello { token } => Value::Object(vec![
                ("type".into(), Value::Str("hello".into())),
                ("token".into(), Value::Str(token.clone())),
            ]),
            Frame::Register => Value::Object(vec![("type".into(), Value::Str("register".into()))]),
            Frame::Registered { worker, lease_ttl_ms, heartbeat_ms } => Value::Object(vec![
                ("type".into(), Value::Str("registered".into())),
                ("worker".into(), Value::Int(*worker as i128)),
                ("lease_ttl_ms".into(), Value::Int(*lease_ttl_ms as i128)),
                ("heartbeat_ms".into(), Value::Int(*heartbeat_ms as i128)),
            ]),
            Frame::Heartbeat { worker } => Value::Object(vec![
                ("type".into(), Value::Str("heartbeat".into())),
                ("worker".into(), Value::Int(*worker as i128)),
            ]),
            Frame::Lease(frame) => frame.to_wire(),
            Frame::LeaseDone(frame) => frame.to_wire(),
            Frame::LeaseRevoke { lease, generation } => Value::Object(vec![
                ("type".into(), Value::Str("lease-revoke".into())),
                ("lease".into(), Value::Int(*lease as i128)),
                ("generation".into(), Value::Int(*generation as i128)),
            ]),
            Frame::LeaseFailed(frame) => frame.to_wire(),
            Frame::Stats => Value::Object(vec![("type".into(), Value::Str("stats".into()))]),
            Frame::StatsResult(snapshot) => snapshot.to_wire(),
        }
    }
}

impl FromWire for Frame {
    fn from_wire(value: &Value) -> Result<Self, WireError> {
        match value.field("type")?.as_str("frame type")? {
            "job" => Ok(Frame::Job(JobSpec::from_wire(value)?)),
            "cancel" => Ok(Frame::Cancel { job: value.field("job")?.as_u64("cancel.job")? }),
            "shutdown" => Ok(Frame::Shutdown),
            "shutting-down" => Ok(Frame::ShuttingDown),
            "cancel-ack" => Ok(Frame::CancelAck {
                job: value.field("job")?.as_u64("cancel-ack.job")?,
                found: value.field("found")?.as_bool("cancel-ack.found")?,
            }),
            "shard-done" => Ok(Frame::ShardDone(ShardDone::from_wire(value)?)),
            "partial" => Ok(Frame::Partial(Partial::from_wire(value)?)),
            "job-done" => Ok(Frame::JobDone(JobDone::from_wire(value)?)),
            "error" => Ok(Frame::Error(ErrorFrame::from_wire(value)?)),
            "hello" => {
                Ok(Frame::Hello { token: value.field("token")?.as_str("hello.token")?.to_owned() })
            }
            "register" => Ok(Frame::Register),
            "registered" => Ok(Frame::Registered {
                worker: value.field("worker")?.as_u64("registered.worker")?,
                lease_ttl_ms: value.field("lease_ttl_ms")?.as_u64("registered.lease_ttl_ms")?,
                heartbeat_ms: value.field("heartbeat_ms")?.as_u64("registered.heartbeat_ms")?,
            }),
            "heartbeat" => {
                Ok(Frame::Heartbeat { worker: value.field("worker")?.as_u64("heartbeat.worker")? })
            }
            "lease" => Ok(Frame::Lease(LeaseGrant::from_wire(value)?)),
            "lease-done" => Ok(Frame::LeaseDone(LeaseDone::from_wire(value)?)),
            "lease-revoke" => Ok(Frame::LeaseRevoke {
                lease: value.field("lease")?.as_u64("lease-revoke.lease")?,
                generation: value.field("generation")?.as_u64("lease-revoke.generation")?,
            }),
            "lease-failed" => Ok(Frame::LeaseFailed(LeaseFailed::from_wire(value)?)),
            "stats" => Ok(Frame::Stats),
            "stats-result" => Ok(Frame::StatsResult(MetricsSnapshot::from_wire(value)?)),
            other => Err(WireError::new(format!("unknown frame type {other:?}"))),
        }
    }
}

/// Encodes a frame as one newline-terminated JSON line.
pub fn encode_line(frame: &Frame) -> String {
    let mut line = frame.to_wire().render();
    line.push('\n');
    line
}

/// Decodes one line (with or without its trailing newline) into a frame.
///
/// # Errors
///
/// Returns a [`WireError`] for malformed JSON, unknown frame types, and
/// missing or ill-typed fields — including truncated input, which always
/// fails (a prefix of a valid frame is never itself a valid frame).
pub fn decode_line(line: &str) -> Result<Frame, WireError> {
    Frame::from_wire(&Value::parse(line.trim_end_matches(['\r', '\n']))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_render_and_reparse() {
        let value = Value::Object(vec![
            ("null".into(), Value::Null),
            ("flag".into(), Value::Bool(true)),
            ("int".into(), Value::Int(-42)),
            ("big".into(), Value::Int(167_890_000_000_000_000_000_000)),
            ("float".into(), Value::Float(1.5)),
            ("whole_float".into(), Value::Float(2.0)),
            ("text".into(), Value::Str("line\n\"quoted\" \\ tab\t".into())),
            ("array".into(), Value::Array(vec![Value::Int(1), Value::Str("two".into())])),
        ]);
        let rendered = value.render();
        assert_eq!(Value::parse(&rendered).unwrap(), value);
        // Int/Float distinction survives the round trip.
        assert!(rendered.contains("\"whole_float\":2.0"));
        assert!(rendered.contains("\"big\":167890000000000000000000"));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "01x",
            "nul",
            "{\"a\":1}trailing",
            "1e999",
            "\"bad escape \\q\"",
            "170141183460469231731687303715884105728", // i128::MAX + 1
        ] {
            assert!(Value::parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let mut bomb = String::new();
        for _ in 0..100 {
            bomb.push('[');
        }
        assert!(Value::parse(&bomb).is_err());
    }

    #[test]
    fn unknown_frame_types_are_rejected() {
        assert!(decode_line("{\"type\":\"launch-missiles\"}").is_err());
        assert!(decode_line("{\"no_type\":1}").is_err());
        assert!(decode_line("[]").is_err());
    }
}
