//! The coordinator-side lease table of the distributed sweep fleet.
//!
//! A *lease* is one shard of one case granted to one remote worker: a
//! `(lease id, generation)` pair plus a [`TaskSpec`] the worker can
//! execute self-containedly.  The table owns the full failure policy —
//! liveness, expiry, re-queue, backoff, fallback — and nothing else: it
//! talks to workers only through injected [`WorkerSender`] closures and
//! reports task outcomes only through per-task completion callbacks, so
//! every policy decision is unit-testable without sockets or threads
//! (all methods take the current [`Instant`] explicitly).
//!
//! The policy, in one paragraph: a worker's deadline is its last frame
//! time plus the lease TTL — heartbeats and completions extend it, and a
//! worker past its deadline is expired wholesale (its in-flight lease
//! re-queued).  A re-queued shard waits out a capped exponential backoff,
//! then goes to a *different* worker when one is idle; after
//! [`FleetConfig::max_attempts`] grants (or whenever the fleet is empty)
//! the shard *falls back* to the local dispatcher path instead — remote
//! execution is an accelerator, never a point of failure.  A completion
//! carrying a stale `(lease, generation)` — the late `lease-done` of an
//! expired grant — is counted and dropped: the shard's accumulator enters
//! the fold exactly once, which is what keeps the merged result
//! bit-identical to the in-process sweep under any crash schedule.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sweep::SweepStats;

use crate::wire::{Frame, LeaseGrant, TaskSpec, Value};

/// Default lease TTL when the daemon is started without an override.
pub const DEFAULT_LEASE_TTL_MS: u64 = 10_000;

/// How the coordinator treats its fleet: lease TTL, retry budget, and the
/// re-queue backoff ramp.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// A worker silent for longer than this is declared dead and its
    /// in-flight lease re-queued.
    pub lease_ttl: Duration,
    /// Total grants a shard may consume before falling back to local
    /// execution.
    pub max_attempts: u32,
    /// Backoff before the first re-grant; doubles per attempt.
    pub backoff_base: Duration,
    /// Upper bound on the backoff ramp.
    pub backoff_cap: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            lease_ttl: Duration::from_millis(DEFAULT_LEASE_TTL_MS),
            max_attempts: 3,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
        }
    }
}

impl FleetConfig {
    /// A config with the given TTL in milliseconds (`0` keeps the
    /// default).
    pub fn with_ttl_ms(ttl_ms: u64) -> Self {
        let mut config = FleetConfig::default();
        if ttl_ms > 0 {
            config.lease_ttl = Duration::from_millis(ttl_ms);
        }
        config
    }

    /// The heartbeat cadence advertised to workers: a quarter of the TTL,
    /// floored so short test TTLs still leave room for several beats.
    pub fn heartbeat_ms(&self) -> u64 {
        (self.lease_ttl.as_millis() as u64 / 4).max(25)
    }
}

/// Sends one frame to a registered worker, returning `false` when the
/// worker's connection is gone (which expires the worker).
pub type WorkerSender = Box<dyn Fn(&Frame) -> bool + Send>;

/// What became of a submitted remote task.
#[derive(Debug)]
pub enum TaskOutcome {
    /// A worker executed the shard; `payload` is the accumulator's wire
    /// rendering and `range` the scenario range the worker covered.
    Done {
        /// Wire rendering of the per-shard accumulator.
        payload: Value,
        /// Scenario range the worker reports for the shard.
        range: (usize, usize),
        /// Execution statistics of the shard.
        stats: SweepStats,
        /// Re-queues this shard survived before completing.
        requeues: u64,
    },
    /// The fleet could not finish the shard (empty, exhausted retries, or
    /// the task was cancelled) — execute it on the local dispatcher path.
    Fallback {
        /// Re-queues this shard consumed before falling back.
        requeues: u64,
    },
}

/// Called exactly once per submitted task, under the table lock — keep it
/// non-blocking (the server hands the outcome to an unbounded channel).
pub type CompleteFn = Box<dyn FnOnce(TaskOutcome) + Send>;

/// A shard submitted for remote execution.
pub struct RemoteTask {
    /// What to execute.
    pub spec: TaskSpec,
    /// Completion callback; receives [`TaskOutcome::Fallback`] when the
    /// fleet gives up on the shard.
    pub complete: CompleteFn,
}

impl fmt::Debug for RemoteTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteTask").field("spec", &self.spec).finish_non_exhaustive()
    }
}

struct WorkerEntry {
    send: WorkerSender,
    /// The lease currently granted to this worker, if any (one at a time —
    /// a worker executes shards sequentially on its read thread).
    busy: Option<u64>,
    /// Instant past which the worker is declared dead.
    deadline: Instant,
}

struct TaskState {
    spec: TaskSpec,
    complete: CompleteFn,
    /// Bumped on every grant; a completion must match the current value
    /// *and* find the lease assigned, so late duplicates never land.
    generation: u64,
    /// Grants consumed so far.
    attempts: u32,
    /// Re-queues survived so far.
    requeues: u64,
    /// The worker currently holding the grant, when assigned.
    assigned: Option<u64>,
    /// Workers that already held (and lost) this lease — avoided on
    /// re-grant when any other worker is idle.
    last_worker: Option<u64>,
    /// Earliest instant the next grant may happen (the backoff ramp).
    not_before: Option<Instant>,
}

struct Inner {
    workers: HashMap<u64, WorkerEntry>,
    /// Every live task, keyed by lease id (queued or assigned).
    leases: HashMap<u64, TaskState>,
    /// Lease ids awaiting (re-)assignment, oldest first.
    queue: VecDeque<u64>,
    next_worker: u64,
    next_lease: u64,
}

/// The lease table: registered workers, queued and granted shards, and
/// the counters the daemon stats line reports.
pub struct LeaseTable {
    inner: Mutex<Inner>,
    config: FleetConfig,
    granted: AtomicU64,
    completed: AtomicU64,
    expired: AtomicU64,
    requeued: AtomicU64,
    fallbacks: AtomicU64,
    duplicates: AtomicU64,
}

impl std::fmt::Debug for LeaseTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeaseTable")
            .field("config", &self.config)
            .field("granted", &self.granted)
            .field("completed", &self.completed)
            .field("expired", &self.expired)
            .field("requeued", &self.requeued)
            .field("fallbacks", &self.fallbacks)
            .field("duplicates", &self.duplicates)
            .finish_non_exhaustive()
    }
}

impl LeaseTable {
    /// Creates an empty table under `config`.
    pub fn new(config: FleetConfig) -> Self {
        LeaseTable {
            inner: Mutex::new(Inner {
                workers: HashMap::new(),
                leases: HashMap::new(),
                queue: VecDeque::new(),
                next_worker: 0,
                next_lease: 0,
            }),
            config,
            granted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            requeued: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
        }
    }

    /// The config the table enforces.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Registers a worker connection and returns its id.  Deliberately
    /// grants nothing: the caller still owes the worker its `registered`
    /// frame, which must precede any lease on the wire.  Queued shards
    /// reach the new worker on the next tick, submit or completion.
    pub fn register(&self, send: WorkerSender, now: Instant) -> u64 {
        let mut inner = self.inner.lock().expect("lease table lock");
        inner.next_worker += 1;
        let id = inner.next_worker;
        inner
            .workers
            .insert(id, WorkerEntry { send, busy: None, deadline: now + self.config.lease_ttl });
        id
    }

    /// Extends a worker's liveness deadline.  Unknown ids (a worker
    /// already expired) are ignored.
    pub fn heartbeat(&self, worker: u64, now: Instant) {
        let mut inner = self.inner.lock().expect("lease table lock");
        if let Some(entry) = inner.workers.get_mut(&worker) {
            entry.deadline = now + self.config.lease_ttl;
        }
    }

    /// Removes a worker whose connection ended, re-queueing its in-flight
    /// lease.
    pub fn worker_gone(&self, worker: u64, now: Instant) {
        let mut inner = self.inner.lock().expect("lease table lock");
        self.kill_worker(&mut inner, worker, now, false);
        self.dispatch(&mut inner, now);
    }

    /// Submits a shard for remote execution.  Returns `false` — without
    /// consuming the task's completion callback against a fallback — when
    /// no workers are registered, so the caller can dispatch locally
    /// without a round trip through the outcome channel.
    pub fn submit(&self, task: RemoteTask, now: Instant) -> bool {
        let mut inner = self.inner.lock().expect("lease table lock");
        if inner.workers.is_empty() {
            return false;
        }
        inner.next_lease += 1;
        let lease = inner.next_lease;
        inner.leases.insert(
            lease,
            TaskState {
                spec: task.spec,
                complete: task.complete,
                generation: 0,
                attempts: 0,
                requeues: 0,
                assigned: None,
                last_worker: None,
                not_before: None,
            },
        );
        inner.queue.push_back(lease);
        self.dispatch(&mut inner, now);
        true
    }

    /// Lands a worker's completion.  Returns `false` (and counts a
    /// duplicate) when the `(lease, generation)` pair no longer names the
    /// active grant — a late or forged `lease-done` — in which case the
    /// payload is dropped on the floor.
    #[allow(clippy::too_many_arguments)]
    pub fn lease_done(
        &self,
        lease: u64,
        generation: u64,
        worker: u64,
        payload: Value,
        range: (usize, usize),
        stats: SweepStats,
        now: Instant,
    ) -> bool {
        let mut inner = self.inner.lock().expect("lease table lock");
        if let Some(entry) = inner.workers.get_mut(&worker) {
            entry.deadline = now + self.config.lease_ttl;
        }
        let valid = inner
            .leases
            .get(&lease)
            .is_some_and(|state| state.generation == generation && state.assigned == Some(worker));
        if !valid {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let state = inner.leases.remove(&lease).expect("validated lease present");
        if let Some(entry) = inner.workers.get_mut(&worker) {
            entry.busy = None;
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
        (state.complete)(TaskOutcome::Done { payload, range, stats, requeues: state.requeues });
        self.dispatch(&mut inner, now);
        true
    }

    /// Lands a worker's typed rejection of a lease: the shard falls back
    /// to local execution immediately (the rejection is deterministic, so
    /// retrying it remotely would fail the same way — the local path
    /// surfaces the same model error as a typed error frame).
    pub fn lease_failed(&self, lease: u64, generation: u64, worker: u64, now: Instant) {
        let mut inner = self.inner.lock().expect("lease table lock");
        if let Some(entry) = inner.workers.get_mut(&worker) {
            entry.deadline = now + self.config.lease_ttl;
        }
        let valid = inner
            .leases
            .get(&lease)
            .is_some_and(|state| state.generation == generation && state.assigned == Some(worker));
        if !valid {
            self.duplicates.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let state = inner.leases.remove(&lease).expect("validated lease present");
        if let Some(entry) = inner.workers.get_mut(&worker) {
            entry.busy = None;
        }
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        (state.complete)(TaskOutcome::Fallback { requeues: state.requeues });
        self.dispatch(&mut inner, now);
    }

    /// The periodic sweep: expires workers past their deadline (re-queueing
    /// their leases) and grants queued shards whose backoff has elapsed.
    pub fn tick(&self, now: Instant) {
        let mut inner = self.inner.lock().expect("lease table lock");
        let dead: Vec<u64> = inner
            .workers
            .iter()
            .filter(|(_, entry)| entry.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for worker in dead {
            self.kill_worker(&mut inner, worker, now, true);
        }
        self.dispatch(&mut inner, now);
    }

    /// Number of currently registered workers.
    pub fn live_workers(&self) -> u64 {
        self.inner.lock().expect("lease table lock").workers.len() as u64
    }

    /// Number of leases currently granted or queued.
    pub fn active_leases(&self) -> u64 {
        self.inner.lock().expect("lease table lock").leases.len() as u64
    }

    /// Lifetime grants sent to workers.
    pub fn granted_total(&self) -> u64 {
        self.granted.load(Ordering::Relaxed)
    }

    /// Lifetime completions merged.
    pub fn completed_total(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Lifetime workers expired by TTL.
    pub fn expired_total(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Lifetime lease re-queues.
    pub fn requeued_total(&self) -> u64 {
        self.requeued.load(Ordering::Relaxed)
    }

    /// Lifetime shards handed back to the local dispatcher path.
    pub fn fallbacks_total(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    /// Lifetime late/stale/forged completions dropped.
    pub fn duplicates_total(&self) -> u64 {
        self.duplicates.load(Ordering::Relaxed)
    }

    /// Milliseconds since each live worker's last frame, by worker id
    /// (sorted) — the per-worker heartbeat-age gauges of the daemon's
    /// metrics snapshot.  Derived from the liveness deadline: a worker's
    /// deadline is its last frame time plus the TTL, so its age is the TTL
    /// minus the time still left.
    pub fn heartbeat_ages_ms(&self, now: Instant) -> Vec<(u64, u64)> {
        let inner = self.inner.lock().expect("lease table lock");
        let ttl = self.config.lease_ttl;
        let mut ages: Vec<(u64, u64)> = inner
            .workers
            .iter()
            .map(|(&id, entry)| {
                let remaining = entry.deadline.saturating_duration_since(now);
                (id, ttl.saturating_sub(remaining).as_millis() as u64)
            })
            .collect();
        ages.sort_unstable();
        ages
    }

    /// Removes a worker (TTL expiry when `expired`, clean disconnect
    /// otherwise), re-queueing its in-flight lease.  A best-effort revoke
    /// frame tells a worker that is alive-but-silent to drop the result.
    fn kill_worker(&self, inner: &mut Inner, worker: u64, now: Instant, expired: bool) {
        let Some(entry) = inner.workers.remove(&worker) else {
            return;
        };
        if expired {
            self.expired.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(lease) = entry.busy {
            if expired {
                if let Some(state) = inner.leases.get(&lease) {
                    let _ =
                        (entry.send)(&Frame::LeaseRevoke { lease, generation: state.generation });
                }
            }
            self.requeue(inner, lease, now);
        }
    }

    /// Puts an assigned lease back on the queue behind its backoff, or
    /// falls the shard back to local execution when its retry budget is
    /// exhausted or the fleet is empty.
    fn requeue(&self, inner: &mut Inner, lease: u64, now: Instant) {
        let Some(state) = inner.leases.get_mut(&lease) else {
            return;
        };
        state.last_worker = state.assigned.take();
        // Invalidate the lost grant: a late completion must fail the
        // assigned check *and* (after a re-grant) the generation check.
        state.generation += 1;
        if state.attempts >= self.config.max_attempts || inner.workers.is_empty() {
            let state = inner.leases.remove(&lease).expect("requeue looked the lease up");
            inner.queue.retain(|&queued| queued != lease);
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
            (state.complete)(TaskOutcome::Fallback { requeues: state.requeues });
            return;
        }
        state.requeues += 1;
        let exponent = state.attempts.saturating_sub(1).min(16);
        let backoff =
            self.config.backoff_base.saturating_mul(1u32 << exponent).min(self.config.backoff_cap);
        state.not_before = Some(now + backoff);
        self.requeued.fetch_add(1, Ordering::Relaxed);
        telemetry::log::warn(
            "service::lease",
            format!(
                "sweep serve: re-queued shard {} of {} (case {}, attempt {}/{}, backoff {} ms)",
                state.spec.shard,
                state.spec.query.name(),
                state.spec.case,
                state.attempts + 1,
                self.config.max_attempts,
                backoff.as_millis(),
            ),
            &[
                ("shard", state.spec.shard.into()),
                ("query", state.spec.query.name().into()),
                ("case", state.spec.case.into()),
                ("attempt", (state.attempts + 1).into()),
                ("max_attempts", self.config.max_attempts.into()),
                ("backoff_ms", (backoff.as_millis() as u64).into()),
            ],
        );
        inner.queue.push_back(lease);
    }

    /// Grants queued shards to idle workers: oldest shard first, smallest
    /// idle worker id first, preferring a worker the shard has not failed
    /// on.  A send failure expires the target worker and the grant is
    /// retried on the next candidate.
    fn dispatch(&self, inner: &mut Inner, now: Instant) {
        let mut deferred: VecDeque<u64> = VecDeque::new();
        while let Some(lease) = inner.queue.pop_front() {
            let Some(state) = inner.leases.get(&lease) else {
                continue;
            };
            // An empty fleet can never serve a queued shard: fall it back
            // now (backoff included), so losing the last worker drains the
            // whole queue to the local pool instead of stranding it.
            if inner.workers.is_empty() {
                let state = inner.leases.remove(&lease).expect("queued lease present");
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                (state.complete)(TaskOutcome::Fallback { requeues: state.requeues });
                continue;
            }
            if state.not_before.is_some_and(|at| at > now) {
                deferred.push_back(lease);
                continue;
            }
            let avoid = state.last_worker;
            let mut idle: Vec<u64> = inner
                .workers
                .iter()
                .filter(|(_, entry)| entry.busy.is_none())
                .map(|(&id, _)| id)
                .collect();
            idle.sort_unstable();
            let preferred = idle
                .iter()
                .copied()
                .find(|&id| Some(id) != avoid)
                .or_else(|| idle.first().copied());
            let Some(worker) = preferred else {
                deferred.push_back(lease);
                continue;
            };
            let state = inner.leases.get_mut(&lease).expect("lease present");
            state.attempts += 1;
            state.generation += 1;
            state.assigned = Some(worker);
            state.not_before = None;
            let grant = Frame::Lease(LeaseGrant {
                lease,
                generation: state.generation,
                task: state.spec.clone(),
            });
            let entry = inner.workers.get_mut(&worker).expect("idle worker present");
            entry.busy = Some(lease);
            if (entry.send)(&grant) {
                self.granted.fetch_add(1, Ordering::Relaxed);
            } else {
                // The connection is gone: expire the worker, which
                // re-queues this very lease, then keep draining.
                self.kill_worker(inner, worker, now, false);
            }
        }
        inner.queue = deferred;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn spec(shard: usize) -> TaskSpec {
        TaskSpec {
            query: crate::wire::QueryKind::Thm1,
            case: 0,
            scope: None,
            seed: 0,
            shards: 4,
            shard,
        }
    }

    /// A worker whose sent frames land on a channel.
    fn channel_worker() -> (WorkerSender, mpsc::Receiver<Frame>) {
        let (tx, rx) = mpsc::channel();
        (Box::new(move |frame: &Frame| tx.send(frame.clone()).is_ok()), rx)
    }

    /// A task whose outcome lands on a channel.
    fn channel_task(shard: usize) -> (RemoteTask, mpsc::Receiver<TaskOutcome>) {
        let (tx, rx) = mpsc::channel();
        (
            RemoteTask {
                spec: spec(shard),
                complete: Box::new(move |outcome| {
                    let _ = tx.send(outcome);
                }),
            },
            rx,
        )
    }

    fn grant_of(frame: Frame) -> LeaseGrant {
        match frame {
            Frame::Lease(grant) => grant,
            other => panic!("expected a lease grant, got {other:?}"),
        }
    }

    fn config() -> FleetConfig {
        FleetConfig::with_ttl_ms(1_000)
    }

    #[test]
    fn empty_fleet_rejects_submissions_without_consuming_them() {
        let table = LeaseTable::new(config());
        let now = Instant::now();
        let (task, outcomes) = channel_task(0);
        assert!(!table.submit(task, now));
        assert!(outcomes.try_recv().is_err(), "no outcome may fire on a rejected submit");
        assert_eq!(table.active_leases(), 0);
    }

    #[test]
    fn grant_complete_round_trip() {
        let table = LeaseTable::new(config());
        let now = Instant::now();
        let (sender, frames) = channel_worker();
        let worker = table.register(sender, now);
        let (task, outcomes) = channel_task(2);
        assert!(table.submit(task, now));
        let grant = grant_of(frames.try_recv().expect("a grant goes out immediately"));
        assert_eq!(grant.task.shard, 2);
        let stats = SweepStats::default();
        assert!(table.lease_done(
            grant.lease,
            grant.generation,
            worker,
            Value::Null,
            (10, 20),
            stats,
            now
        ));
        match outcomes.try_recv().expect("outcome fires") {
            TaskOutcome::Done { range, requeues, .. } => {
                assert_eq!(range, (10, 20));
                assert_eq!(requeues, 0);
            }
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(table.completed_total(), 1);
        assert_eq!(table.active_leases(), 0);
    }

    #[test]
    fn duplicate_and_stale_completions_are_dropped() {
        let table = LeaseTable::new(config());
        let now = Instant::now();
        let (sender, frames) = channel_worker();
        let worker = table.register(sender, now);
        let (task, outcomes) = channel_task(0);
        assert!(table.submit(task, now));
        let grant = grant_of(frames.try_recv().unwrap());
        // Wrong generation: dropped.
        assert!(!table.lease_done(
            grant.lease,
            grant.generation + 7,
            worker,
            Value::Null,
            (0, 5),
            SweepStats::default(),
            now
        ));
        // Right generation: lands.
        assert!(table.lease_done(
            grant.lease,
            grant.generation,
            worker,
            Value::Null,
            (0, 5),
            SweepStats::default(),
            now
        ));
        // Exact duplicate of an already-merged completion: dropped.
        assert!(!table.lease_done(
            grant.lease,
            grant.generation,
            worker,
            Value::Null,
            (0, 5),
            SweepStats::default(),
            now
        ));
        assert_eq!(table.duplicates_total(), 2);
        assert_eq!(outcomes.iter().count(), 1, "the outcome fires exactly once");
    }

    #[test]
    fn expiry_requeues_to_a_different_worker_and_drops_the_late_done() {
        let table = LeaseTable::new(config());
        let t0 = Instant::now();
        let (sender_a, frames_a) = channel_worker();
        let (sender_b, frames_b) = channel_worker();
        let worker_a = table.register(sender_a, t0);
        let worker_b = table.register(sender_b, t0);
        let (task, outcomes) = channel_task(1);
        assert!(table.submit(task, t0));
        // Smallest idle worker id wins the first grant.
        let first = grant_of(frames_a.try_recv().expect("worker A granted first"));
        // Worker B heartbeats; worker A goes silent past the TTL.
        let late = t0 + table.config().lease_ttl + Duration::from_millis(1);
        table.heartbeat(worker_b, late);
        table.tick(late);
        assert_eq!(table.expired_total(), 1);
        assert_eq!(table.requeued_total(), 1);
        assert_eq!(table.live_workers(), 1);
        // A revoke went to the expired worker before its sender was dropped.
        assert!(frames_a
            .try_iter()
            .any(|f| matches!(f, Frame::LeaseRevoke { lease, .. } if lease == first.lease)));
        // After the backoff, the re-grant goes to worker B with a bumped
        // generation.
        let after_backoff = late + table.config().backoff_base;
        table.tick(after_backoff);
        let second = grant_of(frames_b.try_recv().expect("worker B granted the retry"));
        assert_eq!(second.lease, first.lease);
        assert!(second.generation > first.generation);
        // The late completion from the dead worker is dropped...
        assert!(!table.lease_done(
            first.lease,
            first.generation,
            worker_a,
            Value::Null,
            (0, 5),
            SweepStats::default(),
            after_backoff
        ));
        assert!(outcomes.try_recv().is_err(), "dropped completion must not fire the outcome");
        // ...and worker B's genuine completion lands with the requeue count.
        assert!(table.lease_done(
            second.lease,
            second.generation,
            worker_b,
            Value::Null,
            (0, 5),
            SweepStats::default(),
            after_backoff
        ));
        match outcomes.try_recv().unwrap() {
            TaskOutcome::Done { requeues, .. } => assert_eq!(requeues, 1),
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_retries_fall_back_locally() {
        let table = LeaseTable::new(config());
        let mut now = Instant::now();
        // One worker that accepts grants but never completes them; killed
        // and re-registered each round so the fleet never empties.
        let (task, outcomes) = channel_task(0);
        let (sender, _frames) = channel_worker();
        let mut worker = table.register(sender, now);
        assert!(table.submit(task, now));
        for _ in 0..table.config().max_attempts {
            // Replacement registers first so the fleet stays non-empty
            // when the holder dies (otherwise the fallback fires early).
            let (sender, _frames) = channel_worker();
            let replacement = table.register(sender, now);
            table.worker_gone(worker, now);
            worker = replacement;
            now += Duration::from_secs(2);
            table.heartbeat(worker, now);
            table.tick(now);
        }
        match outcomes.try_recv().expect("fallback fires after the retry budget") {
            TaskOutcome::Fallback { requeues } => {
                assert_eq!(requeues, u64::from(table.config().max_attempts) - 1)
            }
            other => panic!("expected Fallback, got {other:?}"),
        }
        assert_eq!(table.fallbacks_total(), 1);
        assert_eq!(table.active_leases(), 0);
    }

    #[test]
    fn losing_the_whole_fleet_falls_back_immediately() {
        let table = LeaseTable::new(config());
        let now = Instant::now();
        let (sender, _frames) = channel_worker();
        let worker = table.register(sender, now);
        let (task, outcomes) = channel_task(3);
        assert!(table.submit(task, now));
        table.worker_gone(worker, now);
        match outcomes.try_recv().expect("fallback fires when the fleet empties") {
            TaskOutcome::Fallback { requeues } => assert_eq!(requeues, 0),
            other => panic!("expected Fallback, got {other:?}"),
        }
        assert_eq!(table.live_workers(), 0);
    }

    #[test]
    fn losing_the_last_worker_drains_queued_leases_to_fallback() {
        let table = LeaseTable::new(config());
        let now = Instant::now();
        let (sender, frames) = channel_worker();
        let worker = table.register(sender, now);
        // First task is granted (worker busy), second waits in the queue.
        let (task_a, out_a) = channel_task(0);
        let (task_b, out_b) = channel_task(1);
        assert!(table.submit(task_a, now));
        assert!(table.submit(task_b, now));
        assert!(frames.try_recv().is_ok(), "first task is granted");
        table.worker_gone(worker, now);
        // Both the busy lease and the never-granted queued one fall back.
        assert!(matches!(out_a.try_recv(), Ok(TaskOutcome::Fallback { .. })));
        assert!(matches!(out_b.try_recv(), Ok(TaskOutcome::Fallback { .. })));
        assert_eq!(table.active_leases(), 0);
        assert_eq!(table.fallbacks_total(), 2);
    }

    #[test]
    fn lease_failed_falls_back_without_retry() {
        let table = LeaseTable::new(config());
        let now = Instant::now();
        let (sender, frames) = channel_worker();
        let worker = table.register(sender, now);
        let (task, outcomes) = channel_task(0);
        assert!(table.submit(task, now));
        let grant = grant_of(frames.try_recv().unwrap());
        table.lease_failed(grant.lease, grant.generation, worker, now);
        assert!(matches!(outcomes.try_recv(), Ok(TaskOutcome::Fallback { requeues: 0 })));
        // The worker is idle again and serves the next submission.
        let (task, _outcomes) = channel_task(1);
        assert!(table.submit(task, now));
        assert!(frames.try_recv().is_ok());
    }

    #[test]
    fn send_failure_expires_the_worker_and_falls_back() {
        let table = LeaseTable::new(config());
        let now = Instant::now();
        let dead: WorkerSender = Box::new(|_| false);
        table.register(dead, now);
        let (task, outcomes) = channel_task(0);
        // The submit sees one worker, the grant fails to send, the worker
        // dies, and — the fleet now empty — the shard falls back.
        assert!(table.submit(task, now));
        assert!(matches!(outcomes.try_recv(), Ok(TaskOutcome::Fallback { .. })));
        assert_eq!(table.live_workers(), 0);
    }

    #[test]
    fn one_worker_runs_shards_sequentially() {
        let table = LeaseTable::new(config());
        let now = Instant::now();
        let (sender, frames) = channel_worker();
        let worker = table.register(sender, now);
        let (task_a, _out_a) = channel_task(0);
        let (task_b, _out_b) = channel_task(1);
        assert!(table.submit(task_a, now));
        assert!(table.submit(task_b, now));
        let first = grant_of(frames.try_recv().expect("first grant"));
        assert!(frames.try_recv().is_err(), "a busy worker gets no second grant");
        assert!(table.lease_done(
            first.lease,
            first.generation,
            worker,
            Value::Null,
            (0, 5),
            SweepStats::default(),
            now
        ));
        let second = grant_of(frames.try_recv().expect("completion frees the worker"));
        assert_eq!(second.task.shard, 1);
    }

    #[test]
    fn callbacks_may_live_on_other_threads() {
        // Compile-time style check: the table is Sync and outcomes can be
        // routed through Arc across threads.
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<LeaseTable>();
        let table = Arc::new(LeaseTable::new(config()));
        let handle = {
            let table = Arc::clone(&table);
            std::thread::spawn(move || table.live_workers())
        };
        assert_eq!(handle.join().unwrap(), 0);
    }
}
