//! The sweep service layer: a long-running daemon (`sweep serve`) that
//! accepts sweep jobs over a Unix/TCP socket, schedules each job's
//! block-aligned shards across a persistent worker pool, streams progress
//! frames back as shards complete, and replays completed per-shard reducer
//! accumulators from an incremental, fingerprint-keyed cache — so a
//! repeated or overlapping query executes only its cold shards.
//!
//! The layer turns the batch engine of the `sweep` crate into a queryable
//! server without changing any fold bit: determinism (shard-, thread- and
//! knob-invariance, PRs 1–4) is exactly what makes per-shard accumulators
//! safe to cache across requests.  Module map:
//!
//! * [`wire`] — the line-delimited JSON protocol (hand-rolled, with
//!   `ToWire`/`FromWire` traits shaped for an eventual swap to the real
//!   serde; see `vendor/README.md`);
//! * [`fingerprint`] — the cache key: scope, protocol set, reducer id,
//!   seed, shard partition and code version, with the invalidation rule on
//!   version mismatch;
//! * [`cache`] — the typed shard-accumulator store;
//! * [`store`] — the durable backend behind it: an object-safe
//!   [`CacheStore`] seam with a CRC-framed append-log + snapshot
//!   implementation ([`DurableStore`]) and byte-budgeted LRU eviction;
//! * [`pool`] — the persistent worker pool (warm `BatchRunner` per
//!   worker, shared across jobs and connections);
//! * [`server`] — accept loop, bounded job queue, concurrent
//!   dispatchers, shard scheduler, streaming, cancellation, graceful
//!   shutdown;
//! * [`lease`] — the coordinator-side lease table of the distributed
//!   fleet: shard grants with TTL expiry, heartbeat liveness, capped
//!   backoff re-queue, generation-based duplicate drop, and fallback to
//!   local execution;
//! * [`worker`] — the remote worker process loop behind
//!   `sweep worker --connect`;
//! * [`client`] — blocking submit/cancel/shutdown calls used by
//!   `sweep submit`/`sweep cancel` and the end-to-end tests;
//! * [`net`] — Unix/TCP endpoints behind one stream type, with
//!   capped-backoff connect retries and the TCP auth handshake.
//!
//! The frame lifecycle and cache design are documented in
//! `docs/ARCHITECTURE.md` ("The service layer", "Persistence and
//! eviction", and "Distributed execution").

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod client;
pub mod fingerprint;
pub mod lease;
pub mod net;
pub mod pool;
pub mod server;
pub mod store;
pub mod wire;
pub mod worker;

use std::fmt;

pub use client::{cancel, stats, submit, JobOutcome};
pub use net::{ConnectOptions, Endpoint};
pub use server::{ServeOptions, Server};
pub use store::{CacheStore, DurableStore, StoreAccounting, StoredEntry};
pub use wire::{ErrorKind, JobSpec, QueryKind, QueryResult, ScopeSpec};
pub use worker::WorkerOptions;

/// Any failure of the service layer, from transport to protocol to model.
#[derive(Debug)]
pub enum ServiceError {
    /// An I/O failure, with what was being attempted.
    Io {
        /// What the operation was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A frame failed to encode or decode.
    Wire(wire::WireError),
    /// A model error raised while executing a job locally.
    Model(synchrony::ModelError),
    /// The peer violated the frame protocol.
    Protocol(String),
    /// The server reported a job failure.
    Remote {
        /// The machine-readable failure class from the error frame.
        kind: wire::ErrorKind,
        /// The human-readable description.
        message: String,
    },
}

impl ServiceError {
    pub(crate) fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        ServiceError::Io { context: context.into(), source }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io { context, source } => write!(f, "{context}: {source}"),
            ServiceError::Wire(error) => write!(f, "{error}"),
            ServiceError::Model(error) => write!(f, "model error: {error}"),
            ServiceError::Protocol(message) => write!(f, "protocol violation: {message}"),
            ServiceError::Remote { kind, message } => {
                write!(f, "server error ({}): {message}", kind.name())
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io { source, .. } => Some(source),
            ServiceError::Wire(error) => Some(error),
            _ => None,
        }
    }
}

impl From<wire::WireError> for ServiceError {
    fn from(error: wire::WireError) -> Self {
        ServiceError::Wire(error)
    }
}

impl From<synchrony::ModelError> for ServiceError {
    fn from(error: synchrony::ModelError) -> Self {
        ServiceError::Model(error)
    }
}
