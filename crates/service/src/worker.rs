//! The remote sweep worker behind `sweep worker --connect`.
//!
//! A worker is deliberately thin: it registers with a coordinator, then
//! loops — pull one lease, rebuild the scenario source self-containedly
//! from the [`TaskSpec`], recompute the identical block-aligned shard
//! partition with `sweep::shard_ranges`, execute the shard through the
//! very same `sweep::fold_shard_stats` kernel the local pool uses, and
//! stream the accumulator back as a `lease-done` frame.  All policy
//! (TTLs, re-queue, dedup, fallback) lives coordinator-side in
//! [`crate::lease`]; the worker's only liveness duty is the heartbeat
//! thread, which keeps beating while a long fold occupies the read loop.
//!
//! Determinism note: the per-shard accumulators are integers and booleans
//! throughout, so their wire round-trip is lossless and a remotely
//! executed shard merges bit-identically to a locally executed one.  A
//! worker that dies mid-shard simply never completes its lease; the
//! coordinator re-queues the shard and the fold is unaffected.

use std::io::{BufRead, BufReader, Write};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use adversary::enumerate::EnumerationConfig;
use adversary::OmissionConfig;
use set_consensus::BatchRunner;
use sweep::experiments::{self, Fig4Reducer, Thm1Reducer, Thm3Reducer, THM3_CASES};
use sweep::{fold_shard_stats, shard_ranges, Reducer, Scenario, ScenarioSource, SweepStats};
use synchrony::ModelError;

use crate::client::open;
use crate::net::{ConnectOptions, Endpoint, Stream};
use crate::pool::WorkerState;
use crate::wire::{
    self, encode_line, Frame, LeaseDone, LeaseFailed, QueryKind, TaskSpec, ToWire, Value,
};
use crate::ServiceError;

/// Log target of the worker's structured stderr lines.
const LOG_TARGET: &str = "service::worker";

/// How a worker process is launched.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// The coordinator to register with.
    pub endpoint: Endpoint,
    /// Connect behavior: retry budget and the TCP auth token.
    pub connect: ConnectOptions,
    /// Heartbeat interval override in milliseconds.  `None` follows the
    /// cadence the coordinator advertises in `registered`; `Some(0)`
    /// disables heartbeats entirely (fault-injection harnesses use this
    /// to simulate a worker whose heartbeat thread died).
    pub heartbeat_ms: Option<u64>,
}

impl WorkerOptions {
    /// Options following the coordinator-advertised heartbeat cadence.
    pub fn new(endpoint: Endpoint) -> Self {
        WorkerOptions { endpoint, connect: ConnectOptions::default(), heartbeat_ms: None }
    }
}

/// The shared write half of the worker's connection (the heartbeat thread
/// and the lease loop both send on it).
type Writer = Arc<Mutex<Stream>>;

fn send(writer: &Writer, frame: &Frame) -> bool {
    let line = encode_line(frame);
    let mut stream = writer.lock().expect("worker writer lock");
    stream.write_all(line.as_bytes()).and_then(|_| stream.flush()).is_ok()
}

/// Connects to the coordinator, registers, and serves leases until the
/// coordinator shuts down or the connection drops.
///
/// # Errors
///
/// Returns connect/auth failures and protocol violations during the
/// handshake.  After registration the worker is fault-tolerant by
/// construction: a dropped connection ends the loop cleanly (`Ok`),
/// because the coordinator re-queues whatever this worker was holding.
pub fn run(options: &WorkerOptions) -> Result<(), ServiceError> {
    let stream = open(&options.endpoint, &options.connect)?;
    let write_half = stream.try_clone()?;
    let writer: Writer = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);

    if !send(&writer, &Frame::Register) {
        return Err(ServiceError::Protocol("connection closed during registration".into()));
    }
    let (worker_id, advertised_heartbeat_ms) = match read_frame(&mut reader)? {
        Some(Frame::Registered { worker, heartbeat_ms, .. }) => (worker, heartbeat_ms),
        Some(Frame::Error(error)) => {
            return Err(ServiceError::Remote { kind: error.kind, message: error.message })
        }
        Some(other) => {
            return Err(ServiceError::Protocol(format!(
                "expected a registered frame, got {other:?}"
            )))
        }
        None => return Err(ServiceError::Protocol("connection closed during registration".into())),
    };
    let heartbeat_ms = options.heartbeat_ms.unwrap_or(advertised_heartbeat_ms);
    telemetry::log::info(
        LOG_TARGET,
        format!(
            "sweep worker: registered as worker {worker_id} with {} (heartbeat {heartbeat_ms} ms)",
            options.endpoint
        ),
        &[
            ("worker", worker_id.into()),
            ("endpoint", options.endpoint.to_string().into()),
            ("heartbeat_ms", heartbeat_ms.into()),
        ],
    );

    // The heartbeat thread keeps the worker alive in the coordinator's
    // lease table while a long fold occupies the lease loop below.  The
    // stop channel makes shutdown responsive: a plain sleep loop would
    // hold the process open for up to one interval.
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let heartbeat = (heartbeat_ms > 0).then(|| {
        let writer = Arc::clone(&writer);
        let interval = Duration::from_millis(heartbeat_ms);
        thread::spawn(move || {
            while let Err(RecvTimeoutError::Timeout) = stop_rx.recv_timeout(interval) {
                if !send(&writer, &Frame::Heartbeat { worker: worker_id }) {
                    break;
                }
            }
        })
    });

    // One warm runner + scratch slot, reused across leases — the same
    // warmth the local pool keeps, with the same bit-identity guarantee.
    let mut state =
        WorkerState { runner: BatchRunner::cached().structure_reuse(true), scratch: None };
    loop {
        match read_frame(&mut reader)? {
            Some(Frame::Lease(grant)) => {
                telemetry::log::info(
                    LOG_TARGET,
                    format!(
                        "sweep worker {worker_id}: executing lease {} (gen {}): \
                         shard {}/{} of {} case {}",
                        grant.lease,
                        grant.generation,
                        grant.task.shard,
                        grant.task.shards,
                        grant.task.query.name(),
                        grant.task.case,
                    ),
                    &[
                        ("worker", worker_id.into()),
                        ("lease", grant.lease.into()),
                        ("generation", grant.generation.into()),
                        ("shard", grant.task.shard.into()),
                        ("shards", grant.task.shards.into()),
                        ("query", grant.task.query.name().into()),
                        ("case", grant.task.case.into()),
                    ],
                );
                let reply = match execute_task(&grant.task, &mut state) {
                    Ok((payload, range, stats)) => Frame::LeaseDone(LeaseDone {
                        lease: grant.lease,
                        generation: grant.generation,
                        worker: worker_id,
                        start: range.0,
                        end: range.1,
                        stats,
                        payload,
                    }),
                    Err(error) => Frame::LeaseFailed(LeaseFailed {
                        lease: grant.lease,
                        generation: grant.generation,
                        message: error.to_string(),
                    }),
                };
                if !send(&writer, &reply) {
                    break;
                }
            }
            Some(Frame::LeaseRevoke { lease, generation }) => {
                // Informational: the grant expired coordinator-side while
                // this worker was silent.  Execution here is synchronous,
                // so by the time a revoke is read any result was already
                // sent — and will be dropped by its stale generation.
                telemetry::log::warn(
                    LOG_TARGET,
                    format!("sweep worker {worker_id}: lease {lease} (gen {generation}) revoked"),
                    &[
                        ("worker", worker_id.into()),
                        ("lease", lease.into()),
                        ("generation", generation.into()),
                    ],
                );
            }
            Some(Frame::ShuttingDown) | None => break,
            Some(other) => {
                return Err(ServiceError::Protocol(format!("unexpected frame {other:?}")));
            }
        }
    }
    drop(stop_tx);
    if let Some(handle) = heartbeat {
        let _ = handle.join();
    }
    telemetry::log::info(
        LOG_TARGET,
        format!("sweep worker {worker_id}: disconnected"),
        &[("worker", worker_id.into())],
    );
    Ok(())
}

/// Reads one frame, `None` on EOF.
fn read_frame(reader: &mut BufReader<Stream>) -> Result<Option<Frame>, ServiceError> {
    let mut line = String::new();
    loop {
        line.clear();
        let read =
            reader.read_line(&mut line).map_err(|e| ServiceError::io("reading a frame", e))?;
        if read == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue;
        }
        return Ok(Some(wire::decode_line(&line)?));
    }
}

/// The per-scenario job of a query, as a plain function pointer (mirrors
/// the local scheduler in `server`).
type JobFn<I> = fn(&mut BatchRunner, &Scenario) -> Result<I, ModelError>;

/// Rebuilds the task's scenario source and executes its shard through the
/// shared `fold_shard_stats` kernel, returning the accumulator's wire
/// rendering, the range actually covered, and the execution statistics.
pub(crate) fn execute_task(
    task: &TaskSpec,
    state: &mut WorkerState,
) -> Result<(Value, (usize, usize), SweepStats), ModelError> {
    match task.query {
        QueryKind::Thm1 => {
            let Some(scope) = &task.scope else {
                return Err(ModelError::InvalidTaskParameter {
                    reason: "thm1 lease without an explicit scope".into(),
                });
            };
            let config = EnumerationConfig {
                n: scope.n,
                t: scope.t,
                max_value: scope.max_value,
                max_crash_round: scope.max_crash_round,
                partial_delivery: scope.partial_delivery,
            };
            let source = experiments::thm1_source(config, scope.k)?;
            fold_task(&source, &Thm1Reducer, experiments::thm1_job, task, state)
        }
        QueryKind::Omission => {
            let Some(scope) = &task.scope else {
                return Err(ModelError::InvalidTaskParameter {
                    reason: "omission lease without an explicit scope".into(),
                });
            };
            // Shared wire frame: `max_crash_round` carries the omission
            // round horizon (see `wire::ScopeSpec`).
            let config = OmissionConfig {
                n: scope.n,
                t: scope.t,
                max_value: scope.max_value,
                rounds: scope.max_crash_round,
            };
            let source = experiments::omission_source(config, scope.k)?;
            fold_task(&source, &Thm1Reducer, experiments::thm1_job, task, state)
        }
        QueryKind::Thm3 => {
            let &(n, t, k) =
                THM3_CASES.get(task.case).ok_or_else(|| ModelError::InvalidTaskParameter {
                    reason: format!("thm3 lease for unknown case {}", task.case),
                })?;
            let source = experiments::thm3_source(n, t, k, task.seed)?;
            fold_task(&source, &Thm3Reducer, experiments::thm3_job, task, state)
        }
        QueryKind::Fig4 => {
            let (source, _shapes) = experiments::fig4_source()?;
            fold_task(&source, &Fig4Reducer, experiments::fig4_job, task, state)
        }
        QueryKind::Prop2 => Err(ModelError::InvalidTaskParameter {
            reason: "prop2 is job-level work and is never shard-leased".into(),
        }),
    }
}

fn fold_task<S, R>(
    source: &S,
    reducer: &R,
    job: JobFn<R::Item>,
    task: &TaskSpec,
    state: &mut WorkerState,
) -> Result<(Value, (usize, usize), SweepStats), ModelError>
where
    S: ScenarioSource,
    R: Reducer,
    R::Acc: ToWire,
{
    let ranges = shard_ranges(source.len(), task.shards, source.structure_block());
    let range =
        ranges.get(task.shard).copied().ok_or_else(|| ModelError::InvalidTaskParameter {
            reason: format!(
                "shard {} out of range (partition has {} shards)",
                task.shard,
                ranges.len()
            ),
        })?;
    let (acc, stats) = fold_shard_stats(
        source,
        reducer,
        &job,
        &mut state.runner,
        &mut state.scratch,
        range,
        true,
    )?;
    Ok((acc.to_wire(), range, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{FromWire, ScopeSpec};
    use sweep::experiments::Thm1Outcome;

    fn warm_state() -> WorkerState {
        WorkerState { runner: BatchRunner::cached().structure_reuse(true), scratch: None }
    }

    #[test]
    fn thm1_task_matches_the_local_fold() {
        let scope = ScopeSpec {
            n: 3,
            t: 1,
            k: 1,
            max_value: 1,
            max_crash_round: 0,
            partial_delivery: false,
        };
        let task = TaskSpec {
            query: QueryKind::Thm1,
            case: 0,
            scope: Some(scope),
            seed: 0,
            shards: 3,
            shard: 1,
        };
        let mut state = warm_state();
        let (payload, range, _stats) = execute_task(&task, &mut state).expect("task executes");
        // Reference: the same shard folded directly.
        let config = EnumerationConfig {
            n: 3,
            t: 1,
            max_value: 1,
            max_crash_round: 0,
            partial_delivery: false,
        };
        let source = experiments::thm1_source(config, 1).unwrap();
        let ranges = shard_ranges(source.len(), 3, source.structure_block());
        assert_eq!(range, ranges[1]);
        let mut reference = warm_state();
        let (expected, _) = fold_shard_stats(
            &source,
            &Thm1Reducer,
            &(experiments::thm1_job as JobFn<_>),
            &mut reference.runner,
            &mut reference.scratch,
            ranges[1],
            true,
        )
        .unwrap();
        assert_eq!(Thm1Outcome::from_wire(&payload).unwrap(), expected);
    }

    #[test]
    fn malformed_tasks_are_typed_rejections() {
        let mut state = warm_state();
        // thm1 without a scope.
        let no_scope =
            TaskSpec { query: QueryKind::Thm1, case: 0, scope: None, seed: 0, shards: 2, shard: 0 };
        assert!(execute_task(&no_scope, &mut state).is_err());
        // thm3 with an out-of-range case.
        let bad_case = TaskSpec {
            query: QueryKind::Thm3,
            case: 99,
            scope: None,
            seed: 0,
            shards: 2,
            shard: 0,
        };
        assert!(execute_task(&bad_case, &mut state).is_err());
        // prop2 is never leasable.
        let prop2 = TaskSpec {
            query: QueryKind::Prop2,
            case: 0,
            scope: None,
            seed: 0,
            shards: 1,
            shard: 0,
        };
        assert!(execute_task(&prop2, &mut state).is_err());
        // shard index beyond the partition.
        let bad_shard =
            TaskSpec { query: QueryKind::Fig4, case: 0, scope: None, seed: 0, shards: 2, shard: 7 };
        assert!(execute_task(&bad_shard, &mut state).is_err());
    }
}
