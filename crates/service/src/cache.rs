//! The incremental shard-accumulator cache.
//!
//! PRs 2–4 made every sweep fold shard- and thread-invariant and
//! bit-identical across all engine knobs — which is exactly the property
//! that makes a *completed per-shard reducer accumulator* reusable across
//! requests: a repeated (or overlapping, as long as the shard partition
//! matches) query replays the cached accumulators and only executes the
//! cold shards.  This module is the typed front: `server` decides what to
//! look up and insert, and `sweep::try_merge_shard_outcomes` re-validates
//! the reducer-law preconditions when cached and fresh accumulators are
//! merged back into a fold.
//!
//! Two backends sit behind the same API:
//!
//! * **typed in-memory** (the default) — a plain `HashMap<ShardKey, _>`,
//!   zero serialization cost, dies with the process;
//! * **a [`CacheStore`]** ([`ShardCache::with_store`]) — every lookup and
//!   insert round-trips through the store's canonical-string keys and
//!   rendered wire payloads, buying byte-budgeted eviction and (with
//!   `store::DurableStore` on a cache dir) persistence across restarts.
//!   The store path is the *only* path when configured, so the byte
//!   accounting has a single authority.  Entries carry the shard's
//!   scenario range; a replay uses the stored range verbatim, so a forged
//!   or corrupted range surfaces as a typed merge error downstream instead
//!   of a silently wrong fold.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::fingerprint::{code_version, ShardKey};
use crate::store::{CacheStore, StoredEntry};
use crate::wire::{FromWire, ToWire, Value};

/// An in-memory cache entry: the accumulator plus the scenario range its
/// shard covers.
type RangedAcc<A> = (A, (usize, usize));

/// A thread-safe map from [`ShardKey`] to a completed accumulator and its
/// scenario range, with hit/miss counters — typed and in-memory by
/// default, routed through a [`CacheStore`] when one is configured.
///
/// One instance per accumulator type lives for the whole daemon process
/// (see `server::DaemonCaches`), so every connection and job shares it.
#[derive(Debug)]
pub struct ShardCache<A> {
    map: Mutex<HashMap<ShardKey, RangedAcc<A>>>,
    store: Option<Arc<dyn CacheStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<A> Default for ShardCache<A> {
    fn default() -> Self {
        ShardCache {
            map: Mutex::new(HashMap::new()),
            store: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<A: Clone + ToWire + FromWire> ShardCache<A> {
    /// Creates an empty, purely in-memory cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a cache routed through `store` — typically one
    /// `store::DurableStore` shared by every typed cache of the daemon
    /// (the keys embed the query name, so one keyspace holds them all).
    pub fn with_store(store: Arc<dyn CacheStore>) -> Self {
        ShardCache { store: Some(store), ..Self::default() }
    }

    /// Looks up the accumulator and stored scenario range of a shard,
    /// counting the hit or miss.
    ///
    /// Keys whose embedded code version differs from this process's
    /// [`code_version`] are refused outright (counted as misses) — the
    /// cache-invalidation rule, which keeps the persisted store from
    /// replaying accumulators across fold-semantics changes.  On the store
    /// path an entry whose payload fails to decode is likewise refused as
    /// a miss — damage degrades to recomputation, never to a panic.
    pub fn get(&self, key: &ShardKey) -> Option<(A, (usize, usize))> {
        let entry = if key.job.code_version != code_version() {
            None
        } else if let Some(store) = &self.store {
            store.load(&key.canonical_string()).and_then(|entry| {
                let acc = Value::parse(&entry.payload)
                    .ok()
                    .as_ref()
                    .and_then(|value| A::from_wire(value).ok())?;
                Some((acc, (entry.start, entry.end)))
            })
        } else {
            self.map.lock().expect("shard cache lock").get(key).cloned()
        };
        match &entry {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        entry
    }

    /// Stores the accumulator of a completed shard together with the
    /// scenario range it covers.
    pub fn insert(&self, key: ShardKey, range: (usize, usize), acc: A) {
        if let Some(store) = &self.store {
            store.store(
                &key.canonical_string(),
                StoredEntry { start: range.0, end: range.1, payload: acc.to_wire().render() },
            );
        } else {
            self.map.lock().expect("shard cache lock").insert(key, (acc, range));
        }
    }

    /// Number of cached shard accumulators (on the store path: live store
    /// entries, across every accumulator type sharing the store).
    pub fn len(&self) -> usize {
        match &self.store {
            Some(store) => store.accounting().entries,
            None => self.map.lock().expect("shard cache lock").len(),
        }
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::JobFingerprint;
    use crate::store::DurableStore;

    fn key(shard: usize, version: &str) -> ShardKey {
        JobFingerprint {
            query: "thm1".into(),
            model: "crash".into(),
            scope: "n=3,t=1,k=1".into(),
            protocols: "optmin".into(),
            seed: 0,
            shards: 2,
            code_version: version.into(),
        }
        .shard(shard)
    }

    #[test]
    fn cache_replays_only_matching_keys() {
        let cache: ShardCache<sweep::experiments::Thm3Acc> = ShardCache::new();
        let acc = sweep::experiments::Thm3Acc {
            per_f: [(1, (3, 40))].into_iter().collect(),
            violations: 0,
        };
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(0, &code_version())), None);
        cache.insert(key(0, &code_version()), (0, 100), acc.clone());
        assert_eq!(cache.get(&key(0, &code_version())), Some((acc, (0, 100))));
        assert_eq!(cache.get(&key(1, &code_version())), None);
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn stale_code_versions_never_replay() {
        let cache: ShardCache<sweep::experiments::Thm1Outcome> = ShardCache::new();
        let stale = key(0, "0.0.0+fold.v0");
        cache.insert(stale.clone(), (0, 100), sweep::experiments::Thm1Outcome::default());
        // Even though the exact key is present, a version mismatch with the
        // running process refuses the replay.
        assert_eq!(cache.get(&stale), None);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn store_path_round_trips_accumulators_and_ranges() {
        let store = Arc::new(DurableStore::in_memory(None));
        let cache: ShardCache<sweep::experiments::Thm1Outcome> =
            ShardCache::with_store(store.clone());
        let acc =
            sweep::experiments::Thm1Outcome { violations: 3, beaten: [true, false], structure: 1 };
        assert_eq!(cache.get(&key(0, &code_version())), None);
        cache.insert(key(0, &code_version()), (40, 80), acc);
        assert_eq!(cache.get(&key(0, &code_version())), Some((acc, (40, 80))));
        assert_eq!(cache.len(), 1);
        assert_eq!(store.accounting().entries, 1);
        // A stale key is refused before the store is even consulted.
        assert_eq!(cache.get(&key(0, "0.0.0+fold.v0")), None);
    }

    #[test]
    fn store_path_refuses_undecodable_payloads_as_misses() {
        use crate::store::{CacheStore, StoredEntry};
        let store = Arc::new(DurableStore::in_memory(None));
        let k = key(0, &code_version());
        // A payload that parses as JSON but is not a Thm1Outcome.
        store.store(&k.canonical_string(), StoredEntry { start: 0, end: 10, payload: "[]".into() });
        let cache: ShardCache<sweep::experiments::Thm1Outcome> = ShardCache::with_store(store);
        assert_eq!(cache.get(&k), None, "undecodable payloads must degrade to a miss");
        assert_eq!(cache.misses(), 1);
    }
}
