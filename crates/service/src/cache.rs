//! The incremental shard-accumulator cache.
//!
//! PRs 2–4 made every sweep fold shard- and thread-invariant and
//! bit-identical across all engine knobs — which is exactly the property
//! that makes a *completed per-shard reducer accumulator* reusable across
//! requests: a repeated (or overlapping, as long as the shard partition
//! matches) query replays the cached accumulators and only executes the
//! cold shards.  This module is the store; `server` decides what to look
//! up and insert, and `sweep::merge_shard_outcomes` re-validates the
//! reducer-law preconditions when cached and fresh accumulators are merged
//! back into a fold.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::fingerprint::{code_version, ShardKey};

/// A typed, thread-safe map from [`ShardKey`] to a completed accumulator,
/// with hit/miss counters.
///
/// One instance per accumulator type lives for the whole daemon process
/// (see `server::DaemonCaches`), so every connection and job shares it.
#[derive(Debug)]
pub struct ShardCache<A> {
    map: Mutex<HashMap<ShardKey, A>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<A> Default for ShardCache<A> {
    fn default() -> Self {
        ShardCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<A: Clone> ShardCache<A> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the accumulator of a shard, counting the hit or miss.
    ///
    /// Keys whose embedded code version differs from this process's
    /// [`code_version`] are refused outright (counted as misses) — the
    /// cache-invalidation rule, which keeps a future persisted store from
    /// replaying accumulators across fold-semantics changes.
    pub fn get(&self, key: &ShardKey) -> Option<A> {
        let entry = if key.job.code_version == code_version() {
            self.map.lock().expect("shard cache lock").get(key).cloned()
        } else {
            None
        };
        match &entry {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        entry
    }

    /// Stores the accumulator of a completed shard.
    pub fn insert(&self, key: ShardKey, acc: A) {
        self.map.lock().expect("shard cache lock").insert(key, acc);
    }

    /// Number of cached shard accumulators.
    pub fn len(&self) -> usize {
        self.map.lock().expect("shard cache lock").len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::JobFingerprint;

    fn key(shard: usize, version: &str) -> ShardKey {
        JobFingerprint {
            query: "thm1".into(),
            scope: "n=3,t=1,k=1".into(),
            protocols: "optmin".into(),
            seed: 0,
            shards: 2,
            code_version: version.into(),
        }
        .shard(shard)
    }

    #[test]
    fn cache_replays_only_matching_keys() {
        let cache: ShardCache<u64> = ShardCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(0, &code_version())), None);
        cache.insert(key(0, &code_version()), 7);
        assert_eq!(cache.get(&key(0, &code_version())), Some(7));
        assert_eq!(cache.get(&key(1, &code_version())), None);
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn stale_code_versions_never_replay() {
        let cache: ShardCache<u64> = ShardCache::new();
        let stale = key(0, "0.0.0+fold.v0");
        cache.insert(stale.clone(), 7);
        // Even though the exact key is present, a version mismatch with the
        // running process refuses the replay.
        assert_eq!(cache.get(&stale), None);
        assert_eq!(cache.misses(), 1);
    }
}
