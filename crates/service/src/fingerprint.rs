//! Job and shard fingerprints: the keys of the incremental
//! shard-accumulator cache.
//!
//! A cached accumulator may only be replayed for a request that would have
//! recomputed it **bit-identically**, so the key must pin down everything
//! the fold value depends on:
//!
//! * the **query** (reducer id) and its **protocol set** — what is folded;
//! * the **scope** — which scenarios are folded (enumeration parameters,
//!   or the case shape for fixed/random sources), including the sub-sweep
//!   case index for multi-case jobs;
//! * the **seed** — which scenarios a seeded random source draws;
//! * the **shard partition** (`shards` + the shard index) — which slice of
//!   the enumeration the accumulator covers.  Shard boundaries come from
//!   `sweep::shard_ranges`, so equal `(len, shards, block)` means equal
//!   ranges;
//! * the **code version** — see [`code_version`].
//!
//! Deliberately *not* in the key: thread/worker counts and the
//! cache/reuse/cursor engine knobs, which are speed-only and provably
//! value-invariant (the determinism tests pin this at every combination).
//! Keying on them would only shrink hit rates.

use std::fmt;

use adversary::enumerate::EnumerationConfig;
use adversary::{OmissionConfig, PatternModel};

/// Returns the code-version component of every fingerprint:
/// `<crate version>+fold.v<N>` with `N = sweep::FOLD_SEMANTICS_VERSION`.
///
/// **Invalidation rule:** a cached accumulator is replayed only when its
/// key — including this string — matches exactly; [`crate::cache::ShardCache`]
/// additionally refuses lookups whose key embeds a *different* code
/// version outright.  Whenever a change could alter any fold bit (a new
/// enumeration order, a reducer change, a shard-alignment change), bumping
/// `FOLD_SEMANTICS_VERSION` turns every stale accumulator into a miss
/// instead of a wrong answer.  Within one daemon process the version is
/// constant; the rule matters the moment keys outlive the process (a
/// future persisted cache) or several daemon builds share a store.
pub fn code_version() -> String {
    format!("{}+fold.v{}", env!("CARGO_PKG_VERSION"), sweep::FOLD_SEMANTICS_VERSION)
}

/// Identity of one sub-sweep (one case) of a job — everything that
/// determines the fold except the shard index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JobFingerprint {
    /// Reducer id (`"thm1"`, `"omission"`, `"thm3"`, `"fig4"`, `"prop2"`).
    pub query: String,
    /// Pattern-space discriminant (`PatternModel::name()`), so a crash-
    /// and an omission-space fold over the *same* `(n, t, k)` shape can
    /// never replay each other's accumulators even if their scope strings
    /// were ever to collide.
    pub model: String,
    /// Canonical scope string of the case (see [`scope_string`] /
    /// [`omission_scope_string`]).
    pub scope: String,
    /// Protocol set folded by the job, in batch order.
    pub protocols: String,
    /// Seed of seeded scenario sources (zero where unused).
    pub seed: u64,
    /// Number of shards the case is partitioned into.
    pub shards: usize,
    /// Code version the accumulators were computed under.
    pub code_version: String,
}

impl JobFingerprint {
    /// Returns the key of one shard of this case.
    pub fn shard(&self, shard: usize) -> ShardKey {
        ShardKey { job: self.clone(), shard }
    }
}

impl fmt::Display for JobFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}@{}] protocols={} seed={} shards={} {}",
            self.query,
            self.model,
            self.scope,
            self.protocols,
            self.seed,
            self.shards,
            self.code_version
        )
    }
}

/// The key of one cached shard accumulator: a case fingerprint plus the
/// shard index within its deterministic partition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShardKey {
    /// The case the shard belongs to.
    pub job: JobFingerprint,
    /// Shard index in `0..job.shards`.
    pub shard: usize,
}

impl ShardKey {
    /// Renders the key as its canonical string — the identity used by the
    /// persisted [`CacheStore`](crate::store::CacheStore) backends, where
    /// keys outlive the typed `HashMap` and must survive a restart
    /// byte-identically.
    ///
    /// The rendering is the compact wire-JSON object of every key field in
    /// a fixed order; two keys are equal iff their canonical strings are.
    pub fn canonical_string(&self) -> String {
        use crate::wire::Value;
        Value::Object(vec![
            ("query".into(), Value::Str(self.job.query.clone())),
            ("model".into(), Value::Str(self.job.model.clone())),
            ("scope".into(), Value::Str(self.job.scope.clone())),
            ("protocols".into(), Value::Str(self.job.protocols.clone())),
            ("seed".into(), Value::Int(self.job.seed as i128)),
            ("shards".into(), Value::Int(self.job.shards as i128)),
            ("shard".into(), Value::Int(self.shard as i128)),
            ("code_version".into(), Value::Str(self.job.code_version.clone())),
        ])
        .render()
    }
}

/// Canonicalizes an exhaustive enumeration scope (plus the agreement
/// degree `k`, which selects the task parameters) into the fingerprint's
/// scope string.
pub fn scope_string(scope: &EnumerationConfig, k: usize) -> String {
    format!(
        "n={},t={},k={},maxv={},mcr={},pd={}",
        scope.n, scope.t, k, scope.max_value, scope.max_crash_round, scope.partial_delivery
    )
}

/// Canonicalizes an exhaustive send-omission scope into the fingerprint's
/// scope string.  The field set differs from [`scope_string`] (no
/// delivery flags; an explicit round horizon), but the `model` key field
/// is what keeps the two families disjoint, not the string shape.
pub fn omission_scope_string(scope: &OmissionConfig, k: usize) -> String {
    format!("n={},t={},k={},maxv={},rounds={}", scope.n, scope.t, k, scope.max_value, scope.rounds)
}

/// The canonical `model` field value of a fingerprint.
pub fn model_string(model: PatternModel) -> String {
    model.name().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_strings_are_injective_over_the_fields() {
        let base = EnumerationConfig::small(3, 1, 2);
        let k = 2;
        let mut seen = std::collections::HashSet::new();
        for scope in [
            base,
            EnumerationConfig { n: 4, ..base },
            EnumerationConfig { t: 2, ..base },
            EnumerationConfig { max_value: 1, ..base },
            EnumerationConfig { max_crash_round: 1, ..base },
            EnumerationConfig { partial_delivery: false, ..base },
        ] {
            assert!(seen.insert(scope_string(&scope, k)), "collision for {scope:?}");
        }
        assert!(seen.insert(scope_string(&base, 1)), "k must be part of the scope string");
    }

    #[test]
    fn omission_scope_strings_are_injective_over_the_fields() {
        let base = OmissionConfig::small(3, 1, 2);
        let k = 2;
        let mut seen = std::collections::HashSet::new();
        for scope in [
            base,
            OmissionConfig { n: 4, ..base },
            OmissionConfig { t: 2, ..base },
            OmissionConfig { max_value: 1, ..base },
            OmissionConfig { rounds: 3, ..base },
        ] {
            assert!(seen.insert(omission_scope_string(&scope, k)), "collision for {scope:?}");
        }
        assert!(seen.insert(omission_scope_string(&base, 1)), "k must be part of the string");
    }

    #[test]
    fn shard_keys_differ_per_shard_and_version() {
        let fingerprint = JobFingerprint {
            query: "thm1".into(),
            model: model_string(PatternModel::Crash),
            scope: "n=3,t=1,k=1".into(),
            protocols: "optmin".into(),
            seed: 0,
            shards: 4,
            code_version: code_version(),
        };
        assert_ne!(fingerprint.shard(0), fingerprint.shard(1));
        let stale = JobFingerprint { code_version: "0.0.0+fold.v0".into(), ..fingerprint.clone() };
        assert_ne!(fingerprint.shard(0), stale.shard(0));
        let omission =
            JobFingerprint { model: model_string(PatternModel::Omission), ..fingerprint.clone() };
        assert_ne!(fingerprint.shard(0), omission.shard(0), "model must enter the key");
        assert!(code_version().contains("+fold.v"));
    }

    #[test]
    fn canonical_strings_are_injective_and_reparse() {
        let fingerprint = JobFingerprint {
            query: "thm1".into(),
            model: model_string(PatternModel::Crash),
            scope: "n=3,t=1,k=1".into(),
            protocols: "optmin".into(),
            seed: 0,
            shards: 4,
            code_version: code_version(),
        };
        let canonical = fingerprint.shard(1).canonical_string();
        assert_ne!(canonical, fingerprint.shard(2).canonical_string());
        let omission =
            JobFingerprint { model: model_string(PatternModel::Omission), ..fingerprint.clone() };
        assert_ne!(
            canonical,
            omission.shard(1).canonical_string(),
            "persisted keys must carry the model discriminant"
        );
        let parsed = crate::wire::Value::parse(&canonical).expect("canonical keys are JSON");
        assert_eq!(parsed.render(), canonical, "rendering must be a fixed point");
        assert_eq!(
            parsed.get("code_version"),
            Some(&crate::wire::Value::Str(code_version())),
            "persisted stores read the version out of the key"
        );
    }
}
