//! The durable, bounded backend behind the shard-accumulator cache.
//!
//! [`ShardCache`](crate::cache::ShardCache) keeps its typed, in-memory
//! fast path; when the daemon is given a `--cache-dir` (or a byte budget)
//! it instead routes every lookup and insert through an object-safe
//! [`CacheStore`] — the persistence seam (the Weavegraph
//! "in-memory or persisted behind one trait" shape).  The one backend,
//! [`DurableStore`], provides:
//!
//! * **byte-budgeted LRU eviction** — the store never holds more than its
//!   budget of serialized entries, evicting least-recently-used shards
//!   first (a replay bumps recency); accounting is exposed through
//!   [`StoreAccounting`] and the daemon's stats line;
//! * **an append-log + periodic snapshot** on disk — every insert is one
//!   CRC-framed line appended to `cache.log`; when the log outgrows the
//!   live set it is compacted into `cache.snap` (written to a temp file
//!   and atomically renamed).  Restarts replay snapshot + log;
//! * **fault tolerance** — a torn or corrupted line (a crashed daemon
//!   mid-append, bitrot) invalidates **from that line on**: the valid
//!   prefix loads, the damaged tail is dropped and scrubbed by an
//!   immediate compaction, and nothing ever panics.  Entries whose key
//!   embeds a stale `code_version` are dropped at load — the
//!   `docs/ARCHITECTURE.md` invalidation rule extended across restarts.
//!
//! Keys are opaque canonical strings (rendered JSON of
//! [`ShardKey`](crate::fingerprint::ShardKey), see
//! [`ShardKey::canonical_string`](crate::fingerprint::ShardKey::canonical_string));
//! payloads are rendered wire [`Value`]s.  The store itself never
//! interprets an accumulator — decoding (and the final say on replay)
//! stays in the typed [`ShardCache`](crate::cache::ShardCache) above it.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use telemetry::Histogram;

use crate::wire::Value;
use crate::ServiceError;

/// One serialized shard entry: the shard's scenario range and the rendered
/// wire value of its accumulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredEntry {
    /// First scenario index covered by the accumulator.
    pub start: usize,
    /// Past-the-end scenario index.
    pub end: usize,
    /// The accumulator, rendered as one wire [`Value`] JSON string.
    pub payload: String,
}

/// A point-in-time accounting snapshot of a [`CacheStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreAccounting {
    /// Live entries.
    pub entries: usize,
    /// Serialized bytes of the live entries (key + payload + framing).
    pub bytes: u64,
    /// The byte budget, if bounded.
    pub budget: Option<u64>,
    /// Entries evicted over the store's lifetime (including load-time
    /// evictions when a restart replays more than the budget holds).
    pub evictions: u64,
    /// Entries replayed from disk at open.
    pub loaded: usize,
    /// Damaged log/snapshot lines dropped at open (torn tail, CRC
    /// mismatch).
    pub dropped_damaged: usize,
    /// Entries dropped at open because their key embeds a different code
    /// version.
    pub dropped_stale: usize,
}

impl fmt::Display for StoreAccounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} entries, {} B", self.entries, self.bytes)?;
        match self.budget {
            Some(budget) => write!(f, " / {budget} B budget")?,
            None => write!(f, " (unbounded)")?,
        }
        write!(f, ", {} evicted", self.evictions)
    }
}

/// The object-safe persistence seam behind the shard-accumulator cache.
///
/// Implementations own eviction and durability; the typed cache above owns
/// encoding, decoding and the replay/refuse decision.  All methods take
/// `&self` and must be thread-safe — one store instance is shared by every
/// connection and dispatcher of the daemon.
pub trait CacheStore: Send + Sync + fmt::Debug {
    /// Looks up an entry by its canonical key string, bumping its recency.
    fn load(&self, key: &str) -> Option<StoredEntry>;

    /// Inserts (or overwrites) an entry, then evicts least-recently-used
    /// entries until the store is back within its byte budget.
    fn store(&self, key: &str, entry: StoredEntry);

    /// Returns the current accounting snapshot.
    fn accounting(&self) -> StoreAccounting;
}

// ---------------------------------------------------------------------------
// CRC framing.
// ---------------------------------------------------------------------------

/// The IEEE CRC-32 table, generated at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { 0xEDB8_8320 ^ (crc >> 1) } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` — the per-line integrity check of the log and
/// snapshot files.  A flipped byte that still parses as JSON (a digit, a
/// flag) would otherwise replay a *wrong* accumulator bit-identically to a
/// right one; the checksum turns silent corruption into a dropped line.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Frames one line body as `<crc32 hex> <body>\n`.
fn frame_line(body: &str) -> String {
    format!("{:08x} {body}\n", crc32(body.as_bytes()))
}

/// Unframes one line: splits off and verifies the CRC prefix, returning
/// the body.  `None` means the line is damaged (torn, corrupted, or not
/// ours at all).
fn unframe_line(line: &str) -> Option<&str> {
    let line = line.strip_suffix('\n').unwrap_or(line);
    let (crc_text, body) = line.split_once(' ')?;
    if crc_text.len() != 8 {
        return None;
    }
    let expected = u32::from_str_radix(crc_text, 16).ok()?;
    (crc32(body.as_bytes()) == expected).then_some(body)
}

// ---------------------------------------------------------------------------
// The line grammar.
// ---------------------------------------------------------------------------

/// First line of both files: the format version, so a future layout change
/// can refuse (rather than misread) old files.
const FORMAT_VERSION: i128 = 1;

fn header_body() -> String {
    Value::Object(vec![("format".into(), Value::Int(FORMAT_VERSION))]).render()
}

/// Renders one entry as a line body.  The key string is itself rendered
/// JSON, so it is embedded *raw* (not re-escaped); parsing the body and
/// re-rendering the `key`/`payload` fields reproduces both strings exactly
/// (the wire `Value` model round-trips byte-identically).
fn entry_body(key: &str, entry: &StoredEntry) -> String {
    format!(
        "{{\"key\":{key},\"start\":{},\"end\":{},\"payload\":{}}}",
        entry.start, entry.end, entry.payload
    )
}

/// Parses one entry body back into `(key, entry)`.  `None` means the body
/// is not a well-formed entry (treated exactly like a CRC failure).
fn parse_entry_body(body: &str) -> Option<(String, StoredEntry)> {
    let value = Value::parse(body).ok()?;
    let key = value.get("key")?;
    if !matches!(key, Value::Object(_)) {
        return None;
    }
    let start = match value.get("start")? {
        Value::Int(i) => usize::try_from(*i).ok()?,
        _ => return None,
    };
    let end = match value.get("end")? {
        Value::Int(i) => usize::try_from(*i).ok()?,
        _ => return None,
    };
    let payload = value.get("payload")?;
    Some((key.render(), StoredEntry { start, end, payload: payload.render() }))
}

/// Reads the `code_version` field out of a canonical key string.
fn key_code_version(key: &str) -> Option<String> {
    match Value::parse(key).ok()?.get("code_version")? {
        Value::Str(version) => Some(version.clone()),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------------

/// Approximate framing overhead per entry (ranges, CRC, field names) added
/// to `key.len() + payload.len()` for budget accounting — close to the
/// on-disk line size without re-rendering on every bookkeeping step.
const ENTRY_OVERHEAD: u64 = 64;

/// Compaction trigger: the log is rewritten into the snapshot once it
/// holds more than this many bytes *and* more than twice the live set
/// (overwrites and evictions make log bytes dead).
const COMPACT_MIN_LOG_BYTES: u64 = 64 * 1024;

#[derive(Debug)]
struct Entry {
    stored: StoredEntry,
    bytes: u64,
    recency: u64,
}

#[derive(Debug)]
struct DiskBacking {
    dir: PathBuf,
    log: BufWriter<File>,
    log_bytes: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    /// recency sequence → key; the leftmost entry is the eviction victim.
    by_recency: BTreeMap<u64, String>,
    next_recency: u64,
    bytes: u64,
    evictions: u64,
    loaded: usize,
    dropped_damaged: usize,
    dropped_stale: usize,
    disk: Option<DiskBacking>,
}

/// The one [`CacheStore`] backend: a byte-budgeted LRU map, optionally
/// persisted as an append-log + snapshot pair under a cache directory.
///
/// See the module docs for the disk layout and recovery rules.
#[derive(Debug)]
pub struct DurableStore {
    inner: Mutex<Inner>,
    budget: Option<u64>,
    /// Per-insert latency (memory bookkeeping + log append + eviction).
    append_us: Histogram,
    /// Per-compaction latency (snapshot rewrite + log truncation).
    compact_us: Histogram,
    /// Wall time of the open-time snapshot/log replay, microseconds.
    recovery_us: AtomicU64,
}

impl DurableStore {
    /// Creates a memory-only store with an optional byte budget — the
    /// bounded-but-not-persisted configuration (`--cache-budget` without
    /// `--cache-dir`).
    pub fn in_memory(budget: Option<u64>) -> Self {
        DurableStore {
            inner: Mutex::new(Inner::default()),
            budget,
            append_us: Histogram::new(),
            compact_us: Histogram::new(),
            recovery_us: AtomicU64::new(0),
        }
    }

    /// Opens (or creates) a persisted store under `dir`, replaying
    /// `cache.snap` then `cache.log`.
    ///
    /// Damaged lines drop the remainder of their file (torn tails from a
    /// killed daemon, bitrot); entries whose key embeds a code version
    /// other than `current_version` are dropped as stale.  If anything was
    /// dropped, the files are immediately compacted so the damage cannot
    /// resurface.  Entries beyond the byte budget are evicted
    /// oldest-first while loading.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (unreadable directory, permissions);
    /// damaged *content* is recovered, never an error and never a panic.
    pub fn open(
        dir: impl Into<PathBuf>,
        budget: Option<u64>,
        current_version: &str,
    ) -> Result<Self, ServiceError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| ServiceError::io(format!("creating cache dir {}", dir.display()), e))?;
        let recovery_start = Instant::now();
        let mut inner = Inner::default();
        let mut needs_scrub = false;
        for file in [dir.join("cache.snap"), dir.join("cache.log")] {
            needs_scrub |= load_file(&file, &mut inner, current_version, budget)?;
        }
        inner.loaded = inner.entries.len();
        let recovery_us = recovery_start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let log_path = dir.join("cache.log");
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(|e| ServiceError::io(format!("opening {}", log_path.display()), e))?;
        let mut log_bytes = log.metadata().map(|m| m.len()).unwrap_or(0);
        let mut log = BufWriter::new(log);
        if log_bytes == 0 {
            // A fresh (or just-truncated) log starts with the header line;
            // a failed write only degrades durability of later appends.
            let line = frame_line(&header_body());
            if log.write_all(line.as_bytes()).and_then(|()| log.flush()).is_ok() {
                log_bytes = line.len() as u64;
            }
        }
        inner.disk = Some(DiskBacking { dir, log, log_bytes });
        let store = DurableStore {
            inner: Mutex::new(inner),
            budget,
            append_us: Histogram::new(),
            compact_us: Histogram::new(),
            recovery_us: AtomicU64::new(recovery_us),
        };
        if needs_scrub {
            let mut inner = store.inner.lock().expect("cache store lock");
            // Best-effort: scrub failures leave the damage on disk, where
            // the next open will recover it again.
            let _ = compact(&mut inner);
        }
        Ok(store)
    }

    /// The configured byte budget.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Per-insert latency histogram (memory bookkeeping + log append +
    /// eviction), for the daemon's metrics snapshot.
    pub fn append_timings(&self) -> &Histogram {
        &self.append_us
    }

    /// Per-compaction latency histogram (snapshot rewrite + log
    /// truncation), for the daemon's metrics snapshot.
    pub fn compact_timings(&self) -> &Histogram {
        &self.compact_us
    }

    /// Wall time of the open-time snapshot/log replay, in microseconds
    /// (zero for an in-memory store).
    pub fn recovery_us(&self) -> u64 {
        self.recovery_us.load(Ordering::Relaxed)
    }
}

fn entry_bytes(key: &str, entry: &StoredEntry) -> u64 {
    key.len() as u64 + entry.payload.len() as u64 + ENTRY_OVERHEAD
}

/// Replays one snapshot/log file into `inner`.  Returns whether anything
/// was dropped (damage or staleness) and the file should be scrubbed.
fn load_file(
    path: &Path,
    inner: &mut Inner,
    current_version: &str,
    budget: Option<u64>,
) -> Result<bool, ServiceError> {
    let file = match File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(ServiceError::io(format!("opening {}", path.display()), e)),
    };
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut first = true;
    let mut dropped = false;
    loop {
        line.clear();
        let read = match reader.read_line(&mut line) {
            Ok(read) => read,
            Err(_) => {
                // Unreadable bytes (not valid UTF-8, I/O error mid-file):
                // the tail from here on is damage.
                inner.dropped_damaged += 1;
                return Ok(true);
            }
        };
        if read == 0 {
            return Ok(dropped);
        }
        let Some(body) = unframe_line(&line) else {
            inner.dropped_damaged += 1;
            return Ok(true);
        };
        if first {
            first = false;
            if body == header_body() {
                continue;
            }
            // A foreign or future-format header: drop the whole file.
            inner.dropped_damaged += 1;
            return Ok(true);
        }
        let Some((key, stored)) = parse_entry_body(body) else {
            inner.dropped_damaged += 1;
            return Ok(true);
        };
        if key_code_version(&key).as_deref() != Some(current_version) {
            inner.dropped_stale += 1;
            dropped = true;
            continue;
        }
        insert_entry(inner, budget, key, stored, false);
    }
}

/// Inserts `stored` under `key`, bumps recency, enforces the budget, and
/// (when `append` is set) writes the log line.
fn insert_entry(
    inner: &mut Inner,
    budget: Option<u64>,
    key: String,
    stored: StoredEntry,
    append: bool,
) {
    if append {
        if let Some(disk) = inner.disk.as_mut() {
            let line = frame_line(&entry_body(&key, &stored));
            // A failed append degrades durability, not correctness: the
            // in-memory entry stays valid for this process's lifetime.
            if disk.log.write_all(line.as_bytes()).and_then(|()| disk.log.flush()).is_ok() {
                disk.log_bytes += line.len() as u64;
            }
        }
    }
    let bytes = entry_bytes(&key, &stored);
    let recency = inner.next_recency;
    inner.next_recency += 1;
    if let Some(old) = inner.entries.remove(&key) {
        inner.bytes -= old.bytes;
        inner.by_recency.remove(&old.recency);
    }
    inner.bytes += bytes;
    inner.by_recency.insert(recency, key.clone());
    inner.entries.insert(key, Entry { stored, bytes, recency });
    if let Some(budget) = budget {
        while inner.bytes > budget {
            let Some((&victim_recency, _)) = inner.by_recency.iter().next() else { break };
            let victim_key = inner.by_recency.remove(&victim_recency).expect("victim key");
            let victim = inner.entries.remove(&victim_key).expect("victim entry");
            inner.bytes -= victim.bytes;
            inner.evictions += 1;
        }
    }
}

/// Rewrites the snapshot from the live set (recency order, oldest first,
/// so a reload reproduces today's LRU order) and truncates the log.
fn compact(inner: &mut Inner) -> std::io::Result<()> {
    let Some(disk) = inner.disk.as_mut() else { return Ok(()) };
    let snap_path = disk.dir.join("cache.snap");
    let tmp_path = disk.dir.join("cache.snap.tmp");
    {
        let mut tmp = BufWriter::new(File::create(&tmp_path)?);
        tmp.write_all(frame_line(&header_body()).as_bytes())?;
        for key in inner.by_recency.values() {
            let entry = &inner.entries[key];
            tmp.write_all(frame_line(&entry_body(key, &entry.stored)).as_bytes())?;
        }
        let tmp = tmp.into_inner().map_err(|e| e.into_error())?;
        tmp.sync_all()?;
    }
    std::fs::rename(&tmp_path, &snap_path)?;
    let log_path = disk.dir.join("cache.log");
    let log = OpenOptions::new().create(true).write(true).truncate(true).open(&log_path)?;
    let mut log = BufWriter::new(log);
    let header = frame_line(&header_body());
    log.write_all(header.as_bytes())?;
    log.flush()?;
    disk.log = log;
    disk.log_bytes = header.len() as u64;
    Ok(())
}

impl CacheStore for DurableStore {
    fn load(&self, key: &str) -> Option<StoredEntry> {
        let mut inner = self.inner.lock().expect("cache store lock");
        let entry = inner.entries.get(key)?;
        let (stored, old_recency) = (entry.stored.clone(), entry.recency);
        // Bump recency: a replayed shard is warm again.
        let recency = inner.next_recency;
        inner.next_recency += 1;
        inner.by_recency.remove(&old_recency);
        inner.by_recency.insert(recency, key.to_owned());
        inner.entries.get_mut(key).expect("entry present").recency = recency;
        Some(stored)
    }

    fn store(&self, key: &str, entry: StoredEntry) {
        let mut inner = self.inner.lock().expect("cache store lock");
        let append_start = Instant::now();
        insert_entry(&mut inner, self.budget, key.to_owned(), entry, true);
        self.append_us.observe(append_start.elapsed());
        let should_compact = inner
            .disk
            .as_ref()
            .is_some_and(|d| d.log_bytes > COMPACT_MIN_LOG_BYTES && d.log_bytes > 2 * inner.bytes);
        if should_compact {
            let compact_start = Instant::now();
            let _ = compact(&mut inner);
            self.compact_us.observe(compact_start.elapsed());
        }
    }

    fn accounting(&self) -> StoreAccounting {
        let inner = self.inner.lock().expect("cache store lock");
        StoreAccounting {
            entries: inner.entries.len(),
            bytes: inner.bytes,
            budget: self.budget,
            evictions: inner.evictions,
            loaded: inner.loaded,
            dropped_damaged: inner.dropped_damaged,
            dropped_stale: inner.dropped_stale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::{code_version, JobFingerprint};

    fn key(shard: usize) -> String {
        JobFingerprint {
            query: "thm1".into(),
            model: "crash".into(),
            scope: "n=3,t=1,k=1".into(),
            protocols: "optmin".into(),
            seed: 0,
            shards: 8,
            code_version: code_version(),
        }
        .shard(shard)
        .canonical_string()
    }

    fn entry(shard: usize, payload: &str) -> StoredEntry {
        StoredEntry { start: shard * 10, end: shard * 10 + 10, payload: payload.into() }
    }

    #[test]
    fn crc_framing_round_trips_and_rejects_damage() {
        let body = entry_body(&key(0), &entry(0, "{\"violations\":3}"));
        let line = frame_line(&body);
        assert_eq!(unframe_line(&line), Some(body.as_str()));
        let mut corrupted = line.clone();
        // Flip one payload digit — still valid JSON, caught only by CRC.
        corrupted = corrupted.replace(":3}", ":4}");
        assert_ne!(corrupted, line);
        assert_eq!(unframe_line(&corrupted), None);
        assert_eq!(unframe_line("not a framed line"), None);
        assert_eq!(unframe_line(""), None);
    }

    #[test]
    fn entry_bodies_round_trip_key_and_payload_exactly() {
        let payload = "{\"per_f\":[[1,2,3]],\"violations\":0}";
        let body = entry_body(&key(3), &entry(3, payload));
        let (parsed_key, parsed) = parse_entry_body(&body).expect("well-formed body");
        assert_eq!(parsed_key, key(3));
        assert_eq!(parsed, entry(3, payload));
    }

    #[test]
    fn in_memory_store_replays_and_bumps_recency() {
        let store = DurableStore::in_memory(None);
        assert_eq!(store.load(&key(0)), None);
        store.store(&key(0), entry(0, "{}"));
        assert_eq!(store.load(&key(0)), Some(entry(0, "{}")));
        let accounting = store.accounting();
        assert_eq!(accounting.entries, 1);
        assert!(accounting.bytes > 0);
        assert_eq!(accounting.evictions, 0);
    }

    #[test]
    fn budget_evicts_least_recently_used_first() {
        let one = entry_bytes(&key(0), &entry(0, "{\"v\":1}"));
        // Room for two entries, not three.
        let store = DurableStore::in_memory(Some(2 * one + one / 2));
        store.store(&key(0), entry(0, "{\"v\":1}"));
        store.store(&key(1), entry(1, "{\"v\":1}"));
        // Touch shard 0 so shard 1 is now the LRU victim.
        assert!(store.load(&key(0)).is_some());
        store.store(&key(2), entry(2, "{\"v\":1}"));
        assert!(store.load(&key(0)).is_some(), "recently used entry must survive");
        assert_eq!(store.load(&key(1)), None, "LRU entry must be evicted");
        assert!(store.load(&key(2)).is_some());
        let accounting = store.accounting();
        assert_eq!(accounting.evictions, 1);
        assert!(accounting.bytes <= accounting.budget.unwrap());
    }

    #[test]
    fn disk_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("sweep-store-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = DurableStore::open(&dir, None, &code_version()).expect("open");
            store.store(&key(0), entry(0, "{\"violations\":7}"));
            store.store(&key(1), entry(1, "{\"violations\":9}"));
        }
        let reopened = DurableStore::open(&dir, None, &code_version()).expect("reopen");
        assert_eq!(reopened.load(&key(0)), Some(entry(0, "{\"violations\":7}")));
        assert_eq!(reopened.load(&key(1)), Some(entry(1, "{\"violations\":9}")));
        assert_eq!(reopened.accounting().loaded, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_code_versions_are_dropped_at_open() {
        let dir = std::env::temp_dir().join(format!("sweep-store-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = DurableStore::open(&dir, None, &code_version()).expect("open");
            store.store(&key(0), entry(0, "{}"));
        }
        let reopened = DurableStore::open(&dir, None, "0.0.0+fold.v0").expect("reopen");
        assert_eq!(reopened.load(&key(0)), None);
        let accounting = reopened.accounting();
        assert_eq!((accounting.loaded, accounting.dropped_stale), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
