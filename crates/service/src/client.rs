//! The `sweep submit` client: submit a job, stream its frames, return the
//! final result.

use std::io::{BufRead, BufReader, Write};

use sweep::SweepStats;
use telemetry::MetricsSnapshot;

use crate::net::{ConnectOptions, Endpoint, Stream};
use crate::wire::{self, encode_line, Frame, JobSpec, QueryResult, ShardDone};
use crate::ServiceError;

/// Everything a completed job streamed back.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The final, fully merged result — bit-identical to an in-process
    /// `sweep::sweep_with_stats` fold of the same job.
    pub result: QueryResult,
    /// Statistics of the executed (non-cached) work; a fully warm job
    /// reports zero scenarios.
    pub stats: SweepStats,
    /// Shards the job was partitioned into, over all cases.
    pub shards_total: u64,
    /// Shards replayed from the daemon's accumulator cache.
    pub shards_cached: u64,
    /// Shards executed on the daemon's worker pool.
    pub shards_executed: u64,
    /// Remote workers registered with the daemon when the job finished.
    pub fleet_workers: u64,
    /// Of the executed shards, how many ran on remote workers.
    pub shards_remote: u64,
    /// Lease re-queues the job survived.
    pub leases_requeued: u64,
    /// Every `shard-done` frame, in arrival order.
    pub shard_frames: Vec<ShardDone>,
    /// Number of `partial` frames received.
    pub partials: usize,
    /// Server-side wall time of the job in milliseconds.
    pub wall_ms: f64,
}

impl JobOutcome {
    /// Fraction of shards served from the accumulator cache, in `[0, 1]`.
    pub fn cached_fraction(&self) -> f64 {
        if self.shards_total == 0 {
            0.0
        } else {
            self.shards_cached as f64 / self.shards_total as f64
        }
    }
}

fn write_frame(stream: &mut Stream, frame: &Frame) -> Result<(), ServiceError> {
    stream
        .write_all(encode_line(frame).as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| ServiceError::io("sending a frame", e))
}

/// Connects under `options`: capped-backoff retries until the connect
/// timeout elapses, then — on a TCP endpoint with a configured token —
/// the `hello` auth handshake as the first frame.  Unix sockets skip the
/// handshake (filesystem permissions already gate them).
pub(crate) fn open(endpoint: &Endpoint, options: &ConnectOptions) -> Result<Stream, ServiceError> {
    let mut stream = Stream::connect_with(endpoint, options.timeout)?;
    if let (Some(token), Endpoint::Tcp(_)) = (&options.auth_token, endpoint) {
        write_frame(&mut stream, &Frame::Hello { token: token.clone() })?;
    }
    Ok(stream)
}

/// Submits one job to a running daemon and blocks until its terminal
/// frame, collecting the streamed progress along the way.
///
/// # Errors
///
/// Returns connection and wire failures, a server-reported job error, or
/// a protocol violation (connection closed mid-job, mismatched job id).
pub fn submit(endpoint: &Endpoint, spec: &JobSpec) -> Result<JobOutcome, ServiceError> {
    submit_with(endpoint, spec, &ConnectOptions::default())
}

/// [`submit`] with explicit connect options (retry budget, auth token).
///
/// # Errors
///
/// As [`submit`].
pub fn submit_with(
    endpoint: &Endpoint,
    spec: &JobSpec,
    options: &ConnectOptions,
) -> Result<JobOutcome, ServiceError> {
    let mut stream = open(endpoint, options)?;
    write_frame(&mut stream, &Frame::Job(spec.clone()))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut shard_frames = Vec::new();
    let mut partials = 0usize;
    loop {
        line.clear();
        let read =
            reader.read_line(&mut line).map_err(|e| ServiceError::io("reading a frame", e))?;
        if read == 0 {
            return Err(ServiceError::Protocol("connection closed before the job finished".into()));
        }
        if line.trim().is_empty() {
            continue;
        }
        match wire::decode_line(&line)? {
            Frame::ShardDone(frame) => shard_frames.push(frame),
            Frame::Partial(_) => partials += 1,
            Frame::JobDone(done) => {
                if done.job != spec.id {
                    return Err(ServiceError::Protocol(format!(
                        "job-done for job {} while waiting on job {}",
                        done.job, spec.id
                    )));
                }
                return Ok(JobOutcome {
                    result: done.result,
                    stats: done.stats,
                    shards_total: done.shards_total,
                    shards_cached: done.shards_cached,
                    shards_executed: done.shards_executed,
                    fleet_workers: done.fleet_workers,
                    shards_remote: done.shards_remote,
                    leases_requeued: done.leases_requeued,
                    shard_frames,
                    partials,
                    wall_ms: done.wall_ms,
                });
            }
            Frame::Error(error) => {
                return Err(ServiceError::Remote { kind: error.kind, message: error.message })
            }
            other => {
                return Err(ServiceError::Protocol(format!("unexpected frame {other:?}")));
            }
        }
    }
}

/// Asks a running daemon to revoke a queued or running job by its id,
/// returning whether the daemon knew the job when the cancel arrived.
/// The revoked job itself terminates with a `cancelled` error frame on
/// the connection that submitted it.
///
/// # Errors
///
/// Returns connection and wire failures, a server-reported error, or a
/// protocol violation (connection closed before the acknowledgement).
pub fn cancel(endpoint: &Endpoint, job: u64) -> Result<bool, ServiceError> {
    cancel_with(endpoint, job, &ConnectOptions::default())
}

/// [`cancel`] with explicit connect options (retry budget, auth token).
///
/// # Errors
///
/// As [`cancel`].
pub fn cancel_with(
    endpoint: &Endpoint,
    job: u64,
    options: &ConnectOptions,
) -> Result<bool, ServiceError> {
    let mut stream = open(endpoint, options)?;
    write_frame(&mut stream, &Frame::Cancel { job })?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| ServiceError::io("reading the cancel ack", e))?;
        if read == 0 {
            return Err(ServiceError::Protocol("daemon closed without acknowledging".into()));
        }
        if line.trim().is_empty() {
            continue;
        }
        match wire::decode_line(&line)? {
            Frame::CancelAck { job: acked, found } => {
                if acked != job {
                    return Err(ServiceError::Protocol(format!(
                        "cancel-ack for job {acked} while cancelling job {job}"
                    )));
                }
                return Ok(found);
            }
            Frame::Error(error) => {
                return Err(ServiceError::Remote { kind: error.kind, message: error.message })
            }
            other => {
                return Err(ServiceError::Protocol(format!("unexpected frame {other:?}")));
            }
        }
    }
}

/// Asks a running daemon for a point-in-time metrics snapshot — job and
/// phase metrics from its registry plus sampled cache/store/lease
/// counters (see the `telemetry` crate for the metric names).
///
/// # Errors
///
/// Returns connection and wire failures, a server-reported error, or a
/// protocol violation (connection closed before the snapshot).
pub fn stats(endpoint: &Endpoint) -> Result<MetricsSnapshot, ServiceError> {
    stats_with(endpoint, &ConnectOptions::default())
}

/// [`stats`] with explicit connect options (retry budget, auth token).
///
/// # Errors
///
/// As [`stats`].
pub fn stats_with(
    endpoint: &Endpoint,
    options: &ConnectOptions,
) -> Result<MetricsSnapshot, ServiceError> {
    let mut stream = open(endpoint, options)?;
    write_frame(&mut stream, &Frame::Stats)?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| ServiceError::io("reading the stats result", e))?;
        if read == 0 {
            return Err(ServiceError::Protocol("daemon closed without a stats result".into()));
        }
        if line.trim().is_empty() {
            continue;
        }
        match wire::decode_line(&line)? {
            Frame::StatsResult(snapshot) => return Ok(snapshot),
            Frame::Error(error) => {
                return Err(ServiceError::Remote { kind: error.kind, message: error.message })
            }
            other => {
                return Err(ServiceError::Protocol(format!("unexpected frame {other:?}")));
            }
        }
    }
}

/// Asks a running daemon to shut down gracefully and waits for the
/// acknowledgement.
///
/// # Errors
///
/// Returns connection and wire failures, or a protocol violation if the
/// daemon closes the connection without acknowledging.
pub fn shutdown(endpoint: &Endpoint) -> Result<(), ServiceError> {
    shutdown_with(endpoint, &ConnectOptions::default())
}

/// [`shutdown`] with explicit connect options (retry budget, auth token).
///
/// # Errors
///
/// As [`shutdown`].
pub fn shutdown_with(endpoint: &Endpoint, options: &ConnectOptions) -> Result<(), ServiceError> {
    let mut stream = open(endpoint, options)?;
    write_frame(&mut stream, &Frame::Shutdown)?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| ServiceError::io("reading the shutdown ack", e))?;
        if read == 0 {
            return Err(ServiceError::Protocol("daemon closed without acknowledging".into()));
        }
        if line.trim().is_empty() {
            continue;
        }
        match wire::decode_line(&line)? {
            Frame::ShuttingDown => return Ok(()),
            Frame::Error(error) => {
                return Err(ServiceError::Remote { kind: error.kind, message: error.message })
            }
            other => {
                return Err(ServiceError::Protocol(format!("unexpected frame {other:?}")));
            }
        }
    }
}
