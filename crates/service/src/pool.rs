//! The daemon's persistent worker pool.
//!
//! Unlike the in-process engine — which spawns scoped threads per sweep —
//! the daemon keeps `workers` threads alive for its whole lifetime, each
//! owning a warm [`set_consensus::BatchRunner`] (analysis cache, run
//! structures, transcript and check buffers) and a scratch
//! [`sweep::Scenario`] slot.  Shard tasks from *all* jobs and connections
//! share the pool, so a worker's caches stay warm across requests — the
//! runner-level analogue of the shard-accumulator cache one level up.
//!
//! Tasks are type-erased closures: the scheduler in `server` monomorphizes
//! per query and the pool stays ignorant of reducers and accumulators.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use set_consensus::BatchRunner;
use sweep::Scenario;

/// The long-lived state a pool worker threads through every task it runs.
#[derive(Debug)]
pub struct WorkerState {
    /// A cached, structure-reusing batch runner, warm across tasks and
    /// jobs.  Both reuse layers are speed-only (bit-identity at any warmth
    /// is pinned by the determinism tests), so sharing the runner across
    /// jobs never changes a fold.
    pub runner: BatchRunner,
    /// The worker's scratch scenario slot for block-cursor walks — any
    /// source's cursor overwrites it wholesale on first advance, so it may
    /// carry state from a different job's source.
    pub scratch: Option<Scenario>,
}

type Task = Box<dyn FnOnce(&mut WorkerState) + Send>;

/// A fixed-size pool of persistent worker threads consuming a shared task
/// queue.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) persistent worker threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = mpsc::channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|_| {
                let receiver: Arc<Mutex<Receiver<Task>>> = Arc::clone(&receiver);
                std::thread::spawn(move || {
                    let mut state = WorkerState {
                        runner: BatchRunner::cached().structure_reuse(true),
                        scratch: None,
                    };
                    loop {
                        // Hold the queue lock only while popping, never
                        // while running a task.
                        let task = receiver.lock().expect("worker queue lock").recv();
                        match task {
                            Ok(task) => task(&mut state),
                            Err(_) => break, // queue closed: shutdown
                        }
                    }
                })
            })
            .collect();
        WorkerPool { sender: Some(sender), handles, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a task; some worker will run it.
    ///
    /// # Panics
    ///
    /// Panics if the pool is already shut down.
    pub fn submit(&self, task: Task) {
        self.sender.as_ref().expect("pool not shut down").send(task).expect("pool workers alive");
    }

    /// Closes the queue and joins every worker after it drains — the
    /// graceful-shutdown path ([`Drop`] does the same, so simply dropping
    /// the pool never orphans a worker thread).
    pub fn shutdown(&mut self) {
        self.sender.take(); // closes the channel; workers drain and exit
        for handle in self.handles.drain(..) {
            handle.join().expect("worker thread panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn tasks_run_and_shutdown_joins() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(2);
        assert_eq!(pool.workers(), 2);
        let (tx, rx) = mpsc::channel();
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(Box::new(move |state| {
                // The worker state is genuinely threaded through.
                let _ = &state.runner;
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).expect("test receiver alive");
            }));
        }
        for _ in 0..10 {
            rx.recv().expect("task completed");
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn zero_workers_still_means_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }
}
