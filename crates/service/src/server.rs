//! The `sweep serve` daemon: accept loop, bounded job queue, concurrent
//! dispatchers, shard scheduler and result streaming.
//!
//! Thread anatomy (one process):
//!
//! ```text
//!   accept loop (main)  ──spawn──►  connection threads (1 per client)
//!        │                             │ parse line frames; cancel registry
//!        │                             ▼
//!        │                          job queue (bounded sync_channel;
//!        │                           full ⇒ queue-full error frame)
//!        ▼                             │
//!   shutdown flag  ◄──────────  dispatcher threads (N, sharing the queue)
//!                                  │ per case: shard_ranges → warm/cold split
//!                                  │ cold shards ──►  persistent worker pool
//!                                  │                   (fold_shard_stats each)
//!                                  ◄── completions; streams shard-done/partial
//!                                  └─ try_merge_shard_outcomes → job-done
//!                                     (typed error frame on failure)
//! ```
//!
//! Jobs are popped FIFO but up to `dispatchers` of them run concurrently,
//! sharing one worker pool — a long job no longer blocks a warm
//! cache-replay behind it.  *Within* a job, each case's block-aligned
//! shards fan out across the pool and complete in any order.  Determinism
//! is unaffected: accumulators are merged in shard order through
//! `sweep::try_merge_shard_outcomes`, so the streamed final fold is
//! bit-identical to an in-process `sweep::sweep_with_stats` at any worker
//! count, warm or cold — the end-to-end tests pin this.  A failed merge
//! precondition (a gapped or out-of-order partition, e.g. from a forged
//! persisted entry) terminates *that job* with a typed error frame; the
//! daemon itself never panics on cache contents.
//!
//! With a `--cache-dir` (or `--cache-budget`), the shard-accumulator
//! caches route through one shared `store::DurableStore` — persisted,
//! byte-budgeted, LRU-evicted; see `store` for the format and recovery
//! rules.  Shard accumulators are inserted into the store *before* their
//! `shard-done` frame is streamed, so any shard a client observed as done
//! is durably replayable after a crash.
//!
//! **Distributed execution.**  Remote `sweep worker` processes register
//! over the same endpoint (a `register` frame turns the connection into a
//! worker session) and the shard scheduler offers every cold shard to the
//! fleet first, through the [`crate::lease`] table: leases carry TTLs,
//! heartbeats keep workers alive, a dead worker's shard is re-queued with
//! capped backoff, and a shard the fleet cannot finish *falls back* to
//! the local pool — with zero workers registered the daemon behaves
//! exactly as before.  Remote accumulators take the same
//! insert-before-stream path into the cache as local ones, and late
//! duplicate completions are dropped by lease generation, so the merged
//! fold stays bit-identical under any crash schedule.  On TCP endpoints
//! an optional shared-secret `hello` handshake (constant-time compared)
//! gates every connection; Unix sockets are exempt.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use adversary::enumerate::EnumerationConfig;
use adversary::{OmissionConfig, PatternModel};
use set_consensus::BatchRunner;
use sweep::experiments::{
    self, Fig4Acc, Fig4Reducer, Thm1Outcome, Thm1Reducer, Thm3Acc, Thm3Reducer, OMISSION_CASES,
    THM1_CASES, THM3_CASES, THM3_SAMPLES,
};
use sweep::{
    fold_shard_stats, shard_ranges, try_merge_shard_outcomes, MergeError, Reducer, Scenario,
    ScenarioSource, ShardOutcome, SweepConfig, SweepStats,
};
use synchrony::ModelError;

use crate::cache::ShardCache;
use crate::fingerprint::{
    code_version, model_string, omission_scope_string, scope_string, JobFingerprint,
};
use crate::lease::{FleetConfig, LeaseTable, RemoteTask, TaskOutcome};
use crate::net::{Endpoint, Listener, Stream};
use crate::pool::WorkerPool;
use crate::store::{CacheStore, DurableStore};
use crate::wire::{
    self, encode_line, ErrorFrame, ErrorKind, Frame, FromWire, JobDone, JobSpec, Partial,
    QueryKind, QueryResult, ScopeSpec, ShardDone, TaskSpec, ToWire, Value,
};
use crate::ServiceError;
use telemetry::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};

/// Log target of every structured line the daemon emits (`--log-json`
/// routes them through `telemetry::log` as JSON objects; the default human
/// mode prints the historical messages byte-identically).
const LOG_TARGET: &str = "service::server";

/// How the daemon is launched.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Where to listen.
    pub endpoint: Endpoint,
    /// Size of the persistent worker pool; `0` picks the machine's
    /// available parallelism.
    pub workers: usize,
    /// Concurrent job dispatchers (jobs running at once); `0` picks
    /// [`ServeOptions::DEFAULT_DISPATCHERS`].
    pub dispatchers: usize,
    /// Bound of the job queue: jobs admitted but not yet dispatched.  A
    /// submit hitting a full queue is rejected with a `queue-full` error
    /// frame instead of growing the queue without bound.  `0` picks
    /// [`ServeOptions::DEFAULT_QUEUE_CAPACITY`].
    pub queue_capacity: usize,
    /// Persist the shard-accumulator cache under this directory
    /// (append-log + snapshot; see `store::DurableStore`).
    pub cache_dir: Option<std::path::PathBuf>,
    /// Byte budget of the shard-accumulator cache (LRU eviction above
    /// it); `None` leaves the cache unbounded.
    pub cache_budget: Option<u64>,
    /// Lease TTL for remote workers in milliseconds: a worker silent for
    /// longer loses its lease (re-queued elsewhere).  `0` picks
    /// [`crate::lease::DEFAULT_LEASE_TTL_MS`].
    pub lease_ttl_ms: u64,
    /// Shared secret required from connections on TCP endpoints (as a
    /// `hello` first frame, constant-time compared).  `None` disables the
    /// handshake; Unix sockets never require it.
    pub auth_token: Option<String>,
    /// Emit a one-line telemetry heartbeat on stderr at this interval
    /// (`sweep serve --stats-interval SECS`); `None` disables it.
    pub stats_interval: Option<Duration>,
    /// Metrics registry the daemon records into.  `None` uses the
    /// process-wide [`telemetry::global`] registry; tests embedding
    /// several daemons in one process inject fresh registries here so
    /// their counters never bleed into each other.
    pub metrics: Option<Arc<Registry>>,
}

impl ServeOptions {
    /// Dispatcher count used when [`ServeOptions::dispatchers`] is `0`.
    pub const DEFAULT_DISPATCHERS: usize = 2;
    /// Queue bound used when [`ServeOptions::queue_capacity`] is `0`.
    pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

    /// Options with every hardening knob at its default: in-memory
    /// unbounded cache, default dispatcher count and queue bound.
    pub fn new(endpoint: Endpoint, workers: usize) -> Self {
        ServeOptions {
            endpoint,
            workers,
            dispatchers: 0,
            queue_capacity: 0,
            cache_dir: None,
            cache_budget: None,
            lease_ttl_ms: 0,
            auth_token: None,
            stats_interval: None,
            metrics: None,
        }
    }
}

/// The protocol sets of each query, in batch order — part of every
/// fingerprint, so a future protocol change cannot replay accumulators
/// folded over a different set.
pub(crate) const THM1_PROTOCOLS: &str = "optmin,earlyfloodmin,floodmin";
const THM3_PROTOCOLS: &str = "upmin";
const FIG4_PROTOCOLS: &str = "upmin,optmin,earlyuniformfloodmin,floodmin";

/// The daemon-lifetime shard-accumulator caches, one typed front per
/// reducer (plus the job-level Proposition 2 report cache), all sharing
/// one optional durable store (the keys embed the query name, so one
/// keyspace holds every type).
#[derive(Debug)]
struct DaemonCaches {
    thm1: ShardCache<Thm1Outcome>,
    omission: ShardCache<Thm1Outcome>,
    thm3: ShardCache<Thm3Acc>,
    fig4: ShardCache<Fig4Acc>,
    prop2: ShardCache<experiments::Prop2Report>,
    store: Option<Arc<DurableStore>>,
}

impl DaemonCaches {
    fn new(store: Option<Arc<DurableStore>>) -> Self {
        fn cache<A: Clone + ToWire + FromWire>(store: &Option<Arc<DurableStore>>) -> ShardCache<A> {
            match store {
                Some(store) => ShardCache::with_store(Arc::clone(store) as Arc<dyn CacheStore>),
                None => ShardCache::new(),
            }
        }
        DaemonCaches {
            thm1: cache(&store),
            omission: cache(&store),
            thm3: cache(&store),
            fig4: cache(&store),
            prop2: cache(&store),
            store,
        }
    }

    /// The `; cache store: …` suffix of the per-job stats line — empty
    /// without a store, the live accounting with one.
    fn store_suffix(&self) -> String {
        match &self.store {
            Some(store) => format!("; cache store: {}", store.accounting()),
            None => String::new(),
        }
    }
}

/// The daemon's recording half of the telemetry subsystem: the registry
/// plus cached hot-path handles (`Registry::counter` takes a lock, so the
/// dispatchers record through these lock-free atomics instead), and the
/// snapshot assembler.
///
/// The registry owns only the metrics that are *new* with telemetry (job
/// counters, phase histograms, queue depth, uptime).  Subsystems that
/// already kept their own counters — the typed shard caches, the lease
/// table, the durable store — are **sampled** into the snapshot at stats
/// time, so nothing is double-counted by mirroring them live.
struct ServerTelemetry {
    registry: Arc<Registry>,
    started: Instant,
    jobs_total: Counter,
    jobs_completed: Counter,
    jobs_failed: Counter,
    shards_cached: Counter,
    shards_executed: Counter,
    shards_remote: Counter,
    engine_scenarios: Counter,
    engine_knowledge_hits: Counter,
    engine_knowledge_misses: Counter,
    engine_runs_simulated: Counter,
    engine_runs_reused: Counter,
    engine_cursor_stepped: Counter,
    engine_cursor_materialized: Counter,
    engine_patterns_unranked: Counter,
    queue_depth: Gauge,
    queue_wait_us: Histogram,
    dispatch_us: Histogram,
    shard_exec_us: Histogram,
    merge_us: Histogram,
    job_us: Histogram,
}

impl ServerTelemetry {
    fn new(registry: Arc<Registry>) -> Self {
        ServerTelemetry {
            started: Instant::now(),
            jobs_total: registry.counter("jobs.total"),
            jobs_completed: registry.counter("jobs.completed"),
            jobs_failed: registry.counter("jobs.failed"),
            shards_cached: registry.counter("jobs.shards_cached"),
            shards_executed: registry.counter("jobs.shards_executed"),
            shards_remote: registry.counter("jobs.shards_remote"),
            engine_scenarios: registry.counter("engine.scenarios"),
            engine_knowledge_hits: registry.counter("engine.knowledge_hits"),
            engine_knowledge_misses: registry.counter("engine.knowledge_misses"),
            engine_runs_simulated: registry.counter("engine.runs_simulated"),
            engine_runs_reused: registry.counter("engine.runs_reused"),
            engine_cursor_stepped: registry.counter("engine.cursor_stepped"),
            engine_cursor_materialized: registry.counter("engine.cursor_materialized"),
            engine_patterns_unranked: registry.counter("engine.patterns_unranked"),
            queue_depth: registry.gauge("queue.depth"),
            queue_wait_us: registry.histogram("phase.queue_wait_us"),
            dispatch_us: registry.histogram("phase.dispatch_us"),
            shard_exec_us: registry.histogram("phase.shard_exec_us"),
            merge_us: registry.histogram("phase.merge_us"),
            job_us: registry.histogram("phase.job_us"),
            registry,
        }
    }

    /// Folds one finished job's summary into the lifetime counters.
    fn absorb_job(&self, summary: &JobSummary) {
        self.shards_cached.add(summary.shards_cached);
        self.shards_executed.add(summary.shards_executed);
        self.shards_remote.add(summary.shards_remote);
        let stats = &summary.stats;
        self.engine_scenarios.add(stats.scenarios);
        self.engine_knowledge_hits.add(stats.cache.hits);
        self.engine_knowledge_misses.add(stats.cache.misses);
        self.engine_runs_simulated.add(stats.runs.simulated);
        self.engine_runs_reused.add(stats.runs.reused);
        self.engine_cursor_stepped.add(stats.cursor.stepped);
        self.engine_cursor_materialized.add(stats.cursor.materialized);
        self.engine_patterns_unranked.add(stats.cursor.patterns_unranked);
    }

    /// Assembles the `stats-result` payload: the registry's own metrics
    /// plus point-in-time samples of the typed shard caches, the durable
    /// store and the lease table.  `cache.replays` — the headline "warm
    /// submits replayed instead of re-executed" number — is the hit sum
    /// across the five typed caches.
    fn snapshot(&self, caches: &DaemonCaches, fleet: &LeaseTable) -> MetricsSnapshot {
        self.registry.gauge("uptime.seconds").set(self.started.elapsed().as_secs() as i64);
        let mut snapshot = self.registry.snapshot();
        let typed: [(&str, u64, u64); 5] = [
            ("thm1", caches.thm1.hits(), caches.thm1.misses()),
            ("omission", caches.omission.hits(), caches.omission.misses()),
            ("thm3", caches.thm3.hits(), caches.thm3.misses()),
            ("fig4", caches.fig4.hits(), caches.fig4.misses()),
            ("prop2", caches.prop2.hits(), caches.prop2.misses()),
        ];
        let mut replays = 0u64;
        let mut misses_total = 0u64;
        for (name, hits, misses) in typed {
            snapshot.push_counter(&format!("cache.{name}.hits"), hits);
            snapshot.push_counter(&format!("cache.{name}.misses"), misses);
            replays += hits;
            misses_total += misses;
        }
        snapshot.push_counter("cache.replays", replays);
        snapshot.push_counter("cache.misses_total", misses_total);
        if let Some(store) = &caches.store {
            let accounting = store.accounting();
            snapshot.push_gauge("store.entries", accounting.entries as i64);
            snapshot.push_gauge("store.bytes", accounting.bytes as i64);
            if let Some(budget) = accounting.budget {
                snapshot.push_gauge("store.budget_bytes", budget as i64);
            }
            snapshot.push_counter("store.evictions", accounting.evictions);
            snapshot.push_counter("store.loaded", accounting.loaded as u64);
            snapshot.push_counter("store.dropped_damaged", accounting.dropped_damaged as u64);
            snapshot.push_counter("store.dropped_stale", accounting.dropped_stale as u64);
            snapshot.push_gauge("store.recovery_us", store.recovery_us() as i64);
            snapshot.histograms.push(store.append_timings().snapshot("store.append_us"));
            snapshot.histograms.push(store.compact_timings().snapshot("store.compact_us"));
            snapshot.histograms.sort_by(|a, b| a.name.cmp(&b.name));
        }
        snapshot.push_counter("lease.granted", fleet.granted_total());
        snapshot.push_counter("lease.completed", fleet.completed_total());
        snapshot.push_counter("lease.expired", fleet.expired_total());
        snapshot.push_counter("lease.requeued", fleet.requeued_total());
        snapshot.push_counter("lease.fallbacks", fleet.fallbacks_total());
        snapshot.push_counter("lease.duplicates", fleet.duplicates_total());
        snapshot.push_gauge("fleet.workers", fleet.live_workers() as i64);
        snapshot.push_gauge("fleet.active_leases", fleet.active_leases() as i64);
        for (worker, age_ms) in fleet.heartbeat_ages_ms(Instant::now()) {
            snapshot.push_gauge(&format!("fleet.worker.{worker}.heartbeat_age_ms"), age_ms as i64);
        }
        snapshot
    }
}

/// How one job failed — each variant maps to a wire [`ErrorKind`], so
/// clients can distinguish a revoked job from a poisoned merge without
/// parsing messages.
#[derive(Debug)]
enum JobError {
    /// The sweep engine rejected the job parameters.
    Model(ModelError),
    /// Cached/fresh accumulators failed the shard-merge preconditions —
    /// the typed, daemon-survivable form of what used to be a worker
    /// panic.
    Merge(MergeError),
    /// The job was revoked by a `cancel` frame.
    Cancelled,
}

impl JobError {
    fn kind(&self) -> ErrorKind {
        match self {
            JobError::Model(_) => ErrorKind::Model,
            JobError::Merge(_) => ErrorKind::Merge,
            JobError::Cancelled => ErrorKind::Cancelled,
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Model(error) => write!(f, "{error}"),
            JobError::Merge(error) => write!(f, "shard merge failed: {error}"),
            JobError::Cancelled => write!(f, "job cancelled"),
        }
    }
}

impl From<ModelError> for JobError {
    fn from(error: ModelError) -> Self {
        JobError::Model(error)
    }
}

/// A queued job: the parsed spec, the submitting connection's writer, and
/// the cancel token the registry can flip.
struct JobTask {
    spec: JobSpec,
    reply: Reply,
    cancel: Arc<AtomicBool>,
    /// When the job was admitted to the queue — the dispatcher that pops
    /// it records the difference as the `phase.queue_wait_us` histogram.
    queued_at: Instant,
}

/// Job id → cancel token of every queued or running job.  Ids are
/// client-chosen; a resubmitted id overwrites the previous token, so
/// clients wanting reliable cancel semantics should keep ids unique.
type CancelRegistry = Arc<Mutex<HashMap<u64, Arc<AtomicBool>>>>;

/// The shared writer of one connection; `shard-done`/`partial`/`job-done`
/// frames of a job go to the connection that submitted it.
type Reply = Arc<Mutex<Stream>>;

/// Sends one frame, reporting whether the client is still connected (a
/// disconnected client never aborts a job — its shards keep warming the
/// cache).
fn send_frame(reply: &Reply, frame: &Frame) -> bool {
    let line = encode_line(frame);
    let mut writer = reply.lock().expect("reply lock");
    writer.write_all(line.as_bytes()).and_then(|_| writer.flush()).is_ok()
}

/// A bound, not-yet-running daemon.
///
/// Splitting [`Server::bind`] from [`Server::run`] lets callers learn the
/// resolved endpoint (TCP port `0`) and move `run` onto its own thread —
/// the shape the end-to-end tests and `sweep serve` both use.
#[derive(Debug)]
pub struct Server {
    listener: Listener,
    endpoint: Endpoint,
    workers: usize,
    dispatchers: usize,
    queue_capacity: usize,
    store: Option<Arc<DurableStore>>,
    fleet_config: FleetConfig,
    auth_token: Option<String>,
    stats_interval: Option<Duration>,
    metrics: Arc<Registry>,
}

impl Server {
    /// Binds the endpoint, resolves the worker/dispatcher counts, and
    /// opens the cache store when one is configured.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, stale socket file, …) and
    /// cache-directory I/O failures.  Damaged cache *content* is never an
    /// error: the store drops the damage and recovers (see
    /// `store::DurableStore::open`).
    pub fn bind(options: &ServeOptions) -> Result<Server, ServiceError> {
        let listener = Listener::bind(&options.endpoint)?;
        let endpoint = listener.local_endpoint();
        let workers = if options.workers > 0 {
            options.workers
        } else {
            thread::available_parallelism().map(usize::from).unwrap_or(1)
        };
        let dispatchers = if options.dispatchers > 0 {
            options.dispatchers
        } else {
            ServeOptions::DEFAULT_DISPATCHERS
        };
        let queue_capacity = if options.queue_capacity > 0 {
            options.queue_capacity
        } else {
            ServeOptions::DEFAULT_QUEUE_CAPACITY
        };
        let store = match &options.cache_dir {
            Some(dir) => {
                Some(Arc::new(DurableStore::open(dir, options.cache_budget, &code_version())?))
            }
            None => {
                options.cache_budget.map(|budget| Arc::new(DurableStore::in_memory(Some(budget))))
            }
        };
        Ok(Server {
            listener,
            endpoint,
            workers,
            dispatchers,
            queue_capacity,
            store,
            fleet_config: FleetConfig::with_ttl_ms(options.lease_ttl_ms),
            auth_token: options.auth_token.clone(),
            stats_interval: options.stats_interval,
            metrics: options.metrics.clone().unwrap_or_else(telemetry::global),
        })
    }

    /// The endpoint actually bound.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// The resolved worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The resolved dispatcher count.
    pub fn dispatchers(&self) -> usize {
        self.dispatchers
    }

    /// Runs the daemon until a client sends a `shutdown` frame, then
    /// finishes every queued job, joins every thread (no orphaned
    /// workers), removes a Unix socket file, and returns.
    ///
    /// # Errors
    ///
    /// Currently infallible after a successful bind — transient accept
    /// failures are logged and survived, never propagated (a long-running
    /// daemon must outlive ECONNABORTED and fd exhaustion).  Clients that
    /// stay connected without submitting do not block shutdown: their
    /// connection threads wake on a read timeout, observe the flag and
    /// exit.
    pub fn run(self) -> Result<(), ServiceError> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = mpsc::sync_channel::<JobTask>(self.queue_capacity);
        let job_rx = Arc::new(Mutex::new(job_rx));
        let registry: CancelRegistry = Arc::new(Mutex::new(HashMap::new()));

        // The dispatchers share the pool, the caches and the fleet's lease
        // table: jobs are popped FIFO, up to `dispatchers` run at once,
        // shards go to remote workers when any are registered and fan out
        // across the persistent local workers otherwise.
        let pool = Arc::new(WorkerPool::new(self.workers));
        let caches = Arc::new(DaemonCaches::new(self.store.clone()));
        let fleet = Arc::new(LeaseTable::new(self.fleet_config.clone()));
        let metrics = Arc::new(ServerTelemetry::new(Arc::clone(&self.metrics)));
        let dispatchers: Vec<_> = (0..self.dispatchers)
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let pool = Arc::clone(&pool);
                let caches = Arc::clone(&caches);
                let registry = Arc::clone(&registry);
                let fleet = Arc::clone(&fleet);
                let metrics = Arc::clone(&metrics);
                thread::spawn(move || loop {
                    // Hold the queue lock only while popping, never while
                    // executing a job.
                    let task = job_rx.lock().expect("job queue lock").recv();
                    match task {
                        Ok(task) => execute_job(&pool, &caches, &registry, &fleet, &metrics, task),
                        Err(_) => break, // queue closed: shutdown
                    }
                })
            })
            .collect();

        // The sweeper expires workers whose heartbeats stopped and grants
        // re-queued shards once their backoff elapses.  During the
        // shutdown drain the worker sessions exit and hand their leases
        // back through `worker_gone`, so jobs finishing after the sweeper
        // stops still fall back to local execution.
        let sweeper = {
            let fleet = Arc::clone(&fleet);
            let shutdown = Arc::clone(&shutdown);
            let interval = Duration::from_millis(
                (self.fleet_config.lease_ttl.as_millis() as u64 / 4).clamp(10, 100),
            );
            thread::spawn(move || {
                while !shutdown.load(Ordering::Relaxed) {
                    fleet.tick(Instant::now());
                    thread::sleep(interval);
                }
            })
        };

        // The opt-in telemetry heartbeat: a one-line snapshot summary on
        // stderr every `--stats-interval`.  The short sleep keeps shutdown
        // latency bounded by ~50 ms rather than by the interval.
        let heartbeat = self.stats_interval.map(|interval| {
            let metrics = Arc::clone(&metrics);
            let caches = Arc::clone(&caches);
            let fleet = Arc::clone(&fleet);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                let mut last = Instant::now();
                while !shutdown.load(Ordering::Relaxed) {
                    thread::sleep(Duration::from_millis(50));
                    if last.elapsed() < interval {
                        continue;
                    }
                    last = Instant::now();
                    let snapshot = metrics.snapshot(&caches, &fleet);
                    let uptime = snapshot.gauge("uptime.seconds").unwrap_or(0);
                    let jobs = snapshot.counter("jobs.total").unwrap_or(0);
                    let depth = snapshot.gauge("queue.depth").unwrap_or(0);
                    let replays = snapshot.counter("cache.replays").unwrap_or(0);
                    let workers = snapshot.gauge("fleet.workers").unwrap_or(0);
                    telemetry::log::info(
                        LOG_TARGET,
                        format!(
                            "sweep serve: stats: up {uptime} s; {jobs} job(s), queue depth \
                             {depth}; {replays} cache replay(s); fleet: {workers} worker(s)"
                        ),
                        &[
                            ("uptime_s", uptime.into()),
                            ("jobs_total", jobs.into()),
                            ("queue_depth", depth.into()),
                            ("cache_replays", replays.into()),
                            ("fleet_workers", workers.into()),
                        ],
                    );
                }
            })
        });

        telemetry::log::info(
            LOG_TARGET,
            format!(
                "sweep serve: listening on {} with {} worker(s), {} dispatcher(s), {}",
                self.endpoint,
                self.workers,
                self.dispatchers,
                code_version()
            ),
            &[
                ("endpoint", self.endpoint.to_string().into()),
                ("workers", self.workers.into()),
                ("dispatchers", self.dispatchers.into()),
                ("code_version", code_version().into()),
            ],
        );
        if let Some(store) = &self.store {
            let accounting = store.accounting();
            telemetry::log::info(
                LOG_TARGET,
                format!(
                    "sweep serve: cache store ready: {accounting}; {} loaded from disk, \
                     {} damaged line(s) dropped, {} stale entr(ies) dropped",
                    accounting.loaded, accounting.dropped_damaged, accounting.dropped_stale
                ),
                &[
                    ("entries", accounting.entries.into()),
                    ("bytes", accounting.bytes.into()),
                    ("loaded", accounting.loaded.into()),
                    ("dropped_damaged", accounting.dropped_damaged.into()),
                    ("dropped_stale", accounting.dropped_stale.into()),
                ],
            );
        }

        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        while !shutdown.load(Ordering::Relaxed) {
            // Reap finished connection threads so the handle list stays
            // bounded by the number of *live* connections, not by the
            // daemon-lifetime total.
            connections.retain(|handle| !handle.is_finished());
            match self.listener.try_accept() {
                Ok(Some(stream)) => {
                    let job_tx = job_tx.clone();
                    let registry = Arc::clone(&registry);
                    let shutdown = Arc::clone(&shutdown);
                    let fleet = Arc::clone(&fleet);
                    let caches = Arc::clone(&caches);
                    let metrics = Arc::clone(&metrics);
                    let auth_token = self.auth_token.clone();
                    connections.push(thread::spawn(move || {
                        handle_connection(
                            stream,
                            &job_tx,
                            &registry,
                            &shutdown,
                            &fleet,
                            &caches,
                            &metrics,
                            auth_token.as_deref(),
                        );
                    }));
                }
                Ok(None) => thread::sleep(Duration::from_millis(5)),
                Err(error) => {
                    // Transient accept failures (ECONNABORTED, fd
                    // exhaustion under load) must not kill a long-running
                    // daemon — log, back off, keep serving.  A persistent
                    // condition will keep logging rather than silently
                    // wedging.
                    telemetry::log::warn(
                        LOG_TARGET,
                        format!("sweep serve: accept failed (continuing): {error}"),
                        &[("error", error.to_string().into())],
                    );
                    thread::sleep(Duration::from_millis(100));
                }
            }
        }
        drop(job_tx);
        for connection in connections {
            let _ = connection.join();
        }
        for dispatcher in dispatchers {
            dispatcher.join().expect("dispatcher thread panicked");
        }
        sweeper.join().expect("sweeper thread panicked");
        if let Some(heartbeat) = heartbeat {
            heartbeat.join().expect("stats heartbeat thread panicked");
        }
        // Dropping the last pool handle closes its queue and joins the
        // workers.
        drop(pool);
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        telemetry::log::info(LOG_TARGET, "sweep serve: shut down cleanly", &[]);
        Ok(())
    }
}

/// How often a connection thread parked on an idle client wakes to check
/// the shutdown flag — bounds the graceful-shutdown latency contributed by
/// clients that connect and never submit.
const CONNECTION_READ_TIMEOUT: Duration = Duration::from_millis(200);

/// Compares two secrets without an early exit, so the comparison time
/// does not leak how long a matching prefix an attacker has guessed.
/// Length is folded into the accumulator rather than short-circuited.
fn constant_time_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// Reads line frames off one connection until EOF or shutdown, queueing
/// jobs (bounded — a full queue rejects with a `queue-full` error frame),
/// flipping cancel tokens, and acknowledging shutdown requests.  On a
/// token-protected TCP endpoint the first frame must be a matching
/// `hello`; a `register` frame turns the connection into a worker
/// session.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: Stream,
    job_tx: &SyncSender<JobTask>,
    registry: &CancelRegistry,
    shutdown: &AtomicBool,
    fleet: &Arc<LeaseTable>,
    caches: &Arc<DaemonCaches>,
    metrics: &Arc<ServerTelemetry>,
    auth_token: Option<&str>,
) {
    // Unix sockets are gated by filesystem permissions already; the
    // shared-secret handshake protects only TCP endpoints.
    let requires_auth = auth_token.is_some() && matches!(stream, Stream::Tcp(_));
    let mut authed = !requires_auth;
    let Ok(write_half) = stream.try_clone() else { return };
    // The read timeout is what keeps shutdown graceful even while a client
    // (e.g. a human on `nc -U`) sits connected and idle: without it this
    // thread would block in `read_line` forever and `Server::run` could
    // never join it.
    if stream.set_read_timeout(Some(CONNECTION_READ_TIMEOUT)).is_err() {
        return;
    }
    let reply: Reply = Arc::new(Mutex::new(write_half));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    'connection: loop {
        line.clear();
        // Assemble one full line, waking on every read timeout to check
        // the shutdown flag.  A timeout may leave a partial line in the
        // buffer; `read_line` appends, so nothing is lost across retries.
        let read = loop {
            match reader.read_line(&mut line) {
                Ok(read) => break read,
                Err(error)
                    if matches!(
                        error.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shutdown.load(Ordering::Relaxed) {
                        break 'connection;
                    }
                }
                Err(_) => break 'connection,
            }
        };
        if read == 0 {
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        match wire::decode_line(&line) {
            Ok(Frame::Hello { token }) => {
                // Ignored where no auth is required (a client configured
                // with a token may talk to an open daemon).
                if requires_auth {
                    if constant_time_eq(&token, auth_token.unwrap_or_default()) {
                        authed = true;
                    } else {
                        send_frame(
                            &reply,
                            &Frame::Error(ErrorFrame {
                                job: None,
                                kind: ErrorKind::Unauthorized,
                                message: "invalid auth token".into(),
                            }),
                        );
                        break;
                    }
                }
            }
            Ok(_) if !authed => {
                send_frame(
                    &reply,
                    &Frame::Error(ErrorFrame {
                        job: None,
                        kind: ErrorKind::Unauthorized,
                        message: "this endpoint requires a hello frame with the auth token".into(),
                    }),
                );
                break;
            }
            Ok(Frame::Register) => {
                // The connection becomes a worker session: it stops
                // accepting job frames and serves the lease protocol
                // until EOF or shutdown.
                worker_session(reader, &reply, fleet, shutdown);
                return;
            }
            Ok(Frame::Job(spec)) => {
                let id = spec.id;
                let cancel = Arc::new(AtomicBool::new(false));
                // Register before queueing, so a cancel can never race past
                // a job that is queued but not yet visible.
                registry.lock().expect("cancel registry lock").insert(id, Arc::clone(&cancel));
                let task =
                    JobTask { spec, reply: Arc::clone(&reply), cancel, queued_at: Instant::now() };
                match job_tx.try_send(task) {
                    Ok(()) => metrics.queue_depth.add(1),
                    Err(TrySendError::Full(_)) => {
                        registry.lock().expect("cancel registry lock").remove(&id);
                        send_frame(
                            &reply,
                            &Frame::Error(ErrorFrame {
                                job: Some(id),
                                kind: ErrorKind::QueueFull,
                                message: "job queue is full; resubmit later".into(),
                            }),
                        );
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        registry.lock().expect("cancel registry lock").remove(&id);
                        break;
                    }
                }
            }
            Ok(Frame::Cancel { job }) => {
                let token = registry.lock().expect("cancel registry lock").get(&job).cloned();
                let found = token.is_some();
                if let Some(token) = token {
                    token.store(true, Ordering::Relaxed);
                }
                send_frame(&reply, &Frame::CancelAck { job, found });
            }
            Ok(Frame::Shutdown) => {
                // Ack, then stop accepting: jobs already queued (including
                // this connection's) still run to completion.
                send_frame(&reply, &Frame::ShuttingDown);
                shutdown.store(true, Ordering::Relaxed);
                break;
            }
            Ok(Frame::Stats) => {
                // Live introspection: assemble a fresh snapshot (registry
                // metrics plus sampled cache/store/lease counters) and
                // stream it back on this connection.
                send_frame(&reply, &Frame::StatsResult(metrics.snapshot(caches, fleet)));
            }
            Ok(_) => {
                send_frame(
                    &reply,
                    &Frame::Error(ErrorFrame {
                        job: None,
                        kind: ErrorKind::Protocol,
                        message: "unexpected frame (clients send job, cancel, stats, \
                                  shutdown or register)"
                            .into(),
                    }),
                );
            }
            Err(error) => {
                send_frame(
                    &reply,
                    &Frame::Error(ErrorFrame {
                        job: None,
                        kind: ErrorKind::Protocol,
                        message: error.to_string(),
                    }),
                );
            }
        }
    }
}

/// Serves one registered worker connection: announces the worker to the
/// lease table, then relays heartbeats and lease completions until EOF or
/// shutdown.  Leaving the loop — however it happens — hands the worker's
/// in-flight lease back to the table, which re-queues or falls it back,
/// so a SIGKILLed worker can never strand a shard.
fn worker_session(
    mut reader: BufReader<Stream>,
    reply: &Reply,
    fleet: &Arc<LeaseTable>,
    shutdown: &AtomicBool,
) {
    // `registered` must be on the wire before any lease frame, so the
    // worker id handshake happens before the table may grant (the table
    // only grants from submit/tick/completion events, never from
    // `register` itself).
    let worker = fleet.register(
        {
            let reply = Arc::clone(reply);
            Box::new(move |frame: &Frame| send_frame(&reply, frame))
        },
        Instant::now(),
    );
    let config = fleet.config();
    if !send_frame(
        reply,
        &Frame::Registered {
            worker,
            lease_ttl_ms: config.lease_ttl.as_millis() as u64,
            heartbeat_ms: config.heartbeat_ms(),
        },
    ) {
        fleet.worker_gone(worker, Instant::now());
        return;
    }
    telemetry::log::info(
        LOG_TARGET,
        format!("sweep serve: worker {worker} registered ({} in fleet)", fleet.live_workers()),
        &[("worker", worker.into()), ("fleet", fleet.live_workers().into())],
    );
    let mut line = String::new();
    'session: loop {
        line.clear();
        let read = loop {
            match reader.read_line(&mut line) {
                Ok(read) => break read,
                Err(error)
                    if matches!(
                        error.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shutdown.load(Ordering::Relaxed) {
                        break 'session;
                    }
                }
                Err(_) => break 'session,
            }
        };
        if read == 0 {
            break;
        }
        if line.trim().is_empty() {
            continue;
        }
        // The session's own worker id is authoritative throughout — a
        // frame cannot heartbeat or complete on behalf of another worker.
        match wire::decode_line(&line) {
            Ok(Frame::Heartbeat { .. }) => fleet.heartbeat(worker, Instant::now()),
            Ok(Frame::LeaseDone(done)) => {
                fleet.lease_done(
                    done.lease,
                    done.generation,
                    worker,
                    done.payload,
                    (done.start, done.end),
                    done.stats,
                    Instant::now(),
                );
            }
            Ok(Frame::LeaseFailed(failed)) => {
                telemetry::log::warn(
                    LOG_TARGET,
                    format!(
                        "sweep serve: worker {worker} rejected lease {}: {}",
                        failed.lease, failed.message
                    ),
                    &[
                        ("worker", worker.into()),
                        ("lease", failed.lease.into()),
                        ("message", failed.message.as_str().into()),
                    ],
                );
                fleet.lease_failed(failed.lease, failed.generation, worker, Instant::now());
            }
            Ok(other) => {
                telemetry::log::warn(
                    LOG_TARGET,
                    format!("sweep serve: worker {worker} sent an unexpected frame {other:?}"),
                    &[("worker", worker.into())],
                );
                break;
            }
            Err(error) => {
                telemetry::log::warn(
                    LOG_TARGET,
                    format!("sweep serve: worker {worker} sent a malformed frame: {error}"),
                    &[("worker", worker.into()), ("error", error.to_string().into())],
                );
                break;
            }
        }
    }
    // Best effort: tell a still-connected worker the session is over so
    // its process exits instead of blocking on a dead read.
    send_frame(reply, &Frame::ShuttingDown);
    fleet.worker_gone(worker, Instant::now());
    telemetry::log::info(
        LOG_TARGET,
        format!("sweep serve: worker {worker} disconnected ({} in fleet)", fleet.live_workers()),
        &[("worker", worker.into()), ("fleet", fleet.live_workers().into())],
    );
}

/// Everything [`JobDone`] reports about one finished job.
struct JobSummary {
    result: QueryResult,
    stats: SweepStats,
    shards_total: u64,
    shards_cached: u64,
    shards_executed: u64,
    shards_remote: u64,
    leases_requeued: u64,
}

impl JobSummary {
    fn new(result: QueryResult) -> Self {
        JobSummary {
            result,
            stats: SweepStats::default(),
            shards_total: 0,
            shards_cached: 0,
            shards_executed: 0,
            shards_remote: 0,
            leases_requeued: 0,
        }
    }

    fn absorb<A>(&mut self, case: &CaseOutcome<A>) {
        self.stats.merge(case.stats);
        self.shards_total += case.shards_total as u64;
        self.shards_cached += case.shards_cached as u64;
        self.shards_executed += (case.shards_total - case.shards_cached) as u64;
        self.shards_remote += case.shards_remote;
        self.leases_requeued += case.requeues;
    }
}

/// Runs one queued job end to end and streams its terminal frame.  A job
/// failure — model error, poisoned merge, cancellation — terminates the
/// job with a typed error frame and leaves the daemon (and this
/// dispatcher) serving.
fn execute_job(
    pool: &WorkerPool,
    caches: &DaemonCaches,
    registry: &CancelRegistry,
    fleet: &Arc<LeaseTable>,
    metrics: &ServerTelemetry,
    task: JobTask,
) {
    let JobTask { spec, reply, cancel, queued_at } = task;
    let start = Instant::now();
    metrics.queue_depth.add(-1);
    metrics.jobs_total.inc();
    metrics.queue_wait_us.observe(start.saturating_duration_since(queued_at));
    let outcome = if cancel.load(Ordering::Relaxed) {
        // Revoked while still queued: never starts executing.
        Err(JobError::Cancelled)
    } else {
        run_query(pool, caches, fleet, metrics, &spec, &reply, &cancel)
    };
    registry.lock().expect("cancel registry lock").remove(&spec.id);
    match outcome {
        Ok(summary) => {
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            metrics.job_us.observe(start.elapsed());
            metrics.jobs_completed.inc();
            metrics.absorb_job(&summary);
            // The daemon-side job trailer, reusing the canonical stats-line
            // renderer of the sweep crate, plus the store accounting when a
            // durable/bounded cache is configured and the fleet accounting
            // (lifetime counters of the lease table — the CI smoke leg and
            // the e2e tests grep this line).
            telemetry::log::info(
                LOG_TARGET,
                format!(
                    "sweep serve: job {} ({}) done in {:.0} ms; shards: {} total, {} cached, \
                     {} executed ({} remote); {}{}; fleet: {} workers, {} leases active, \
                     {} granted, {} expired, {} re-queued, {} duplicates dropped",
                    spec.id,
                    spec.query.name(),
                    wall_ms,
                    summary.shards_total,
                    summary.shards_cached,
                    summary.shards_executed,
                    summary.shards_remote,
                    summary.stats.stats_line(),
                    caches.store_suffix(),
                    fleet.live_workers(),
                    fleet.active_leases(),
                    fleet.granted_total(),
                    fleet.expired_total(),
                    fleet.requeued_total(),
                    fleet.duplicates_total(),
                ),
                &[
                    ("job", spec.id.into()),
                    ("query", spec.query.name().into()),
                    ("wall_ms", wall_ms.into()),
                    ("shards_total", summary.shards_total.into()),
                    ("shards_cached", summary.shards_cached.into()),
                    ("shards_executed", summary.shards_executed.into()),
                    ("shards_remote", summary.shards_remote.into()),
                ],
            );
            send_frame(
                &reply,
                &Frame::JobDone(JobDone {
                    job: spec.id,
                    result: summary.result,
                    stats: summary.stats,
                    shards_total: summary.shards_total,
                    shards_cached: summary.shards_cached,
                    shards_executed: summary.shards_executed,
                    fleet_workers: fleet.live_workers(),
                    shards_remote: summary.shards_remote,
                    leases_requeued: summary.leases_requeued,
                    wall_ms,
                }),
            );
        }
        Err(error) => {
            metrics.jobs_failed.inc();
            telemetry::log::warn(
                LOG_TARGET,
                format!(
                    "sweep serve: job {} ({}) failed ({}): {error}",
                    spec.id,
                    spec.query.name(),
                    error.kind().name()
                ),
                &[
                    ("job", spec.id.into()),
                    ("query", spec.query.name().into()),
                    ("kind", error.kind().name().into()),
                    ("error", error.to_string().into()),
                ],
            );
            send_frame(
                &reply,
                &Frame::Error(ErrorFrame {
                    job: Some(spec.id),
                    kind: error.kind(),
                    message: error.to_string(),
                }),
            );
        }
    }
}

/// Resolves `shards = 0` to `4 × workers`, mirroring
/// [`SweepConfig::resolved_shards`] over the pool size.
fn resolved_shards(spec: &JobSpec, pool: &WorkerPool) -> usize {
    if spec.shards > 0 {
        spec.shards
    } else {
        pool.workers() * 4
    }
}

fn run_query(
    pool: &WorkerPool,
    caches: &DaemonCaches,
    fleet: &Arc<LeaseTable>,
    metrics: &ServerTelemetry,
    spec: &JobSpec,
    reply: &Reply,
    cancel: &Arc<AtomicBool>,
) -> Result<JobSummary, JobError> {
    if spec.scope.is_some() && !matches!(spec.query, QueryKind::Thm1 | QueryKind::Omission) {
        return Err(JobError::Model(ModelError::InvalidTaskParameter {
            reason: "custom scopes are only supported for thm1 and omission jobs".into(),
        }));
    }
    match spec.query {
        QueryKind::Thm1 => run_thm1(pool, caches, fleet, metrics, spec, reply, cancel),
        QueryKind::Omission => run_omission(pool, caches, fleet, metrics, spec, reply, cancel),
        QueryKind::Thm3 => run_thm3(pool, caches, fleet, metrics, spec, reply, cancel),
        QueryKind::Fig4 => run_fig4(pool, caches, fleet, metrics, spec, reply, cancel),
        QueryKind::Prop2 => run_prop2(pool, caches, spec, reply),
    }
}

fn run_thm1(
    pool: &WorkerPool,
    caches: &DaemonCaches,
    fleet: &Arc<LeaseTable>,
    metrics: &ServerTelemetry,
    spec: &JobSpec,
    reply: &Reply,
    cancel: &Arc<AtomicBool>,
) -> Result<JobSummary, JobError> {
    let cases: Vec<(EnumerationConfig, usize)> = match &spec.scope {
        Some(scope) => vec![(
            EnumerationConfig {
                n: scope.n,
                t: scope.t,
                max_value: scope.max_value,
                max_crash_round: scope.max_crash_round,
                partial_delivery: scope.partial_delivery,
            },
            scope.k,
        )],
        None => THM1_CASES.iter().map(|&(n, t, k)| (experiments::thm1_scope(n, t, k), k)).collect(),
    };
    let shards = resolved_shards(spec, pool);
    let mut rows = Vec::new();
    let mut summary = JobSummary::new(QueryResult::Thm1(Vec::new()));
    for (case_index, &(scope, k)) in cases.iter().enumerate() {
        let source = experiments::thm1_source(scope, k)?;
        let adversaries = source.space().len();
        let fingerprint = JobFingerprint {
            query: "thm1".into(),
            model: model_string(PatternModel::Crash),
            scope: scope_string(&scope, k),
            protocols: THM1_PROTOCOLS.into(),
            seed: 0,
            shards,
            code_version: code_version(),
        };
        // Remote workers rebuild the case from an explicit scope, so even
        // built-in cases ship theirs.
        let lease_scope = Some(ScopeSpec {
            n: scope.n,
            t: scope.t,
            k,
            max_value: scope.max_value,
            max_crash_round: scope.max_crash_round,
            partial_delivery: scope.partial_delivery,
        });
        let case = run_case(CaseContext {
            pool,
            reply,
            fleet,
            metrics,
            query: QueryKind::Thm1,
            lease_scope,
            seed: 0,
            job_id: spec.id,
            case: case_index,
            cases: cases.len(),
            shards,
            use_shard_cache: spec.shard_cache,
            cancel,
            source: Arc::new(source),
            reducer: Arc::new(Thm1Reducer),
            job: experiments::thm1_job,
            cache: &caches.thm1,
            fingerprint,
            encode_partial: |acc: &Thm1Outcome| {
                Value::Object(vec![
                    ("violations".into(), Value::Int(acc.violations as i128)),
                    ("beaten_earlyfloodmin".into(), Value::Bool(acc.beaten[0])),
                    ("beaten_floodmin".into(), Value::Bool(acc.beaten[1])),
                    ("structure_violations".into(), Value::Int(acc.structure as i128)),
                ])
            },
        })?;
        summary.absorb(&case);
        rows.push(experiments::thm1_case_row(&scope, k, adversaries, case.acc));
    }
    summary.result = QueryResult::Thm1(rows);
    Ok(summary)
}

/// The omission twin of [`run_thm1`]: same job, reducer and row shape,
/// folded over the exhaustive send-omission space.  Its fingerprints
/// carry `model=omission`, so crash and omission accumulators over the
/// same `(n, t, k)` shape live under disjoint cache keys.
fn run_omission(
    pool: &WorkerPool,
    caches: &DaemonCaches,
    fleet: &Arc<LeaseTable>,
    metrics: &ServerTelemetry,
    spec: &JobSpec,
    reply: &Reply,
    cancel: &Arc<AtomicBool>,
) -> Result<JobSummary, JobError> {
    let cases: Vec<(OmissionConfig, usize)> = match &spec.scope {
        // The wire frame is shared with thm1: `max_crash_round` carries the
        // omission round horizon and `partial_delivery` is ignored.
        Some(scope) => vec![(
            OmissionConfig {
                n: scope.n,
                t: scope.t,
                max_value: scope.max_value,
                rounds: scope.max_crash_round,
            },
            scope.k,
        )],
        None => OMISSION_CASES
            .iter()
            .map(|&(n, t, k)| (experiments::omission_scope(n, t, k), k))
            .collect(),
    };
    let shards = resolved_shards(spec, pool);
    let mut rows = Vec::new();
    let mut summary = JobSummary::new(QueryResult::Omission(Vec::new()));
    for (case_index, &(scope, k)) in cases.iter().enumerate() {
        let source = experiments::omission_source(scope, k)?;
        let adversaries = source.space().len();
        let fingerprint = JobFingerprint {
            query: "omission".into(),
            model: model_string(PatternModel::Omission),
            scope: omission_scope_string(&scope, k),
            protocols: THM1_PROTOCOLS.into(),
            seed: 0,
            shards,
            code_version: code_version(),
        };
        let lease_scope = Some(ScopeSpec {
            n: scope.n,
            t: scope.t,
            k,
            max_value: scope.max_value,
            max_crash_round: scope.rounds,
            partial_delivery: false,
        });
        let case = run_case(CaseContext {
            pool,
            reply,
            fleet,
            metrics,
            query: QueryKind::Omission,
            lease_scope,
            seed: 0,
            job_id: spec.id,
            case: case_index,
            cases: cases.len(),
            shards,
            use_shard_cache: spec.shard_cache,
            cancel,
            source: Arc::new(source),
            reducer: Arc::new(Thm1Reducer),
            job: experiments::thm1_job,
            cache: &caches.omission,
            fingerprint,
            encode_partial: |acc: &Thm1Outcome| {
                Value::Object(vec![
                    ("violations".into(), Value::Int(acc.violations as i128)),
                    ("beaten_earlyfloodmin".into(), Value::Bool(acc.beaten[0])),
                    ("beaten_floodmin".into(), Value::Bool(acc.beaten[1])),
                    ("structure_violations".into(), Value::Int(acc.structure as i128)),
                ])
            },
        })?;
        summary.absorb(&case);
        rows.push(experiments::omission_case_row(&scope, k, adversaries, case.acc));
    }
    summary.result = QueryResult::Omission(rows);
    Ok(summary)
}

fn run_thm3(
    pool: &WorkerPool,
    caches: &DaemonCaches,
    fleet: &Arc<LeaseTable>,
    metrics: &ServerTelemetry,
    spec: &JobSpec,
    reply: &Reply,
    cancel: &Arc<AtomicBool>,
) -> Result<JobSummary, JobError> {
    let shards = resolved_shards(spec, pool);
    let mut rows = Vec::new();
    let mut summary = JobSummary::new(QueryResult::Thm3(Vec::new()));
    for (case_index, &(n, t, k)) in THM3_CASES.iter().enumerate() {
        let source = experiments::thm3_source(n, t, k, spec.seed)?;
        let fingerprint = JobFingerprint {
            query: "thm3".into(),
            model: model_string(PatternModel::Crash),
            scope: format!("n={n},t={t},k={k},samples={THM3_SAMPLES}"),
            protocols: THM3_PROTOCOLS.into(),
            seed: spec.seed,
            shards,
            code_version: code_version(),
        };
        let case = run_case(CaseContext {
            pool,
            reply,
            fleet,
            metrics,
            query: QueryKind::Thm3,
            lease_scope: None,
            seed: spec.seed,
            job_id: spec.id,
            case: case_index,
            cases: THM3_CASES.len(),
            shards,
            use_shard_cache: spec.shard_cache,
            cancel,
            source: Arc::new(source),
            reducer: Arc::new(Thm3Reducer),
            job: experiments::thm3_job,
            cache: &caches.thm3,
            fingerprint,
            encode_partial: |acc: &Thm3Acc| {
                Value::Object(vec![
                    (
                        "runs".into(),
                        Value::Int(acc.per_f.values().map(|&(_, runs)| runs as i128).sum()),
                    ),
                    ("violations".into(), Value::Int(acc.violations as i128)),
                ])
            },
        })?;
        summary.absorb(&case);
        rows.extend(experiments::thm3_rows(n, t, k, &case.acc)?);
    }
    summary.result = QueryResult::Thm3(rows);
    Ok(summary)
}

fn run_fig4(
    pool: &WorkerPool,
    caches: &DaemonCaches,
    fleet: &Arc<LeaseTable>,
    metrics: &ServerTelemetry,
    spec: &JobSpec,
    reply: &Reply,
    cancel: &Arc<AtomicBool>,
) -> Result<JobSummary, JobError> {
    let shards = resolved_shards(spec, pool);
    let (source, shapes) = experiments::fig4_source()?;
    let fingerprint = JobFingerprint {
        query: "fig4".into(),
        model: model_string(PatternModel::Crash),
        scope: "uniform-gap builtin k*rounds".into(),
        protocols: FIG4_PROTOCOLS.into(),
        seed: 0,
        shards,
        code_version: code_version(),
    };
    let case = run_case(CaseContext {
        pool,
        reply,
        fleet,
        metrics,
        query: QueryKind::Fig4,
        lease_scope: None,
        seed: 0,
        job_id: spec.id,
        case: 0,
        cases: 1,
        shards,
        use_shard_cache: spec.shard_cache,
        cancel,
        source: Arc::new(source),
        reducer: Arc::new(Fig4Reducer),
        job: experiments::fig4_job,
        cache: &caches.fig4,
        fingerprint,
        encode_partial: |acc: &Fig4Acc| {
            Value::Object(vec![("points".into(), Value::Int(acc.len() as i128))])
        },
    })?;
    let mut summary =
        JobSummary::new(QueryResult::Fig4(experiments::fig4_rows(&shapes, &case.acc)));
    summary.absorb(&case);
    Ok(summary)
}

/// Proposition 2 mixes sweeps with global protocol-complex builds, so it
/// is cached at job granularity (one "shard" covering the whole report)
/// and executed on the dispatcher thread with the engine's own scoped
/// parallelism.
fn run_prop2(
    pool: &WorkerPool,
    caches: &DaemonCaches,
    spec: &JobSpec,
    reply: &Reply,
) -> Result<JobSummary, JobError> {
    let fingerprint = JobFingerprint {
        query: "prop2".into(),
        model: model_string(PatternModel::Crash),
        scope: "builtin".into(),
        protocols: "none".into(),
        seed: spec.seed,
        shards: 1,
        code_version: code_version(),
    };
    let key = fingerprint.shard(0);
    let cached = if spec.shard_cache { caches.prop2.get(&key) } else { None };
    let (report, stats, was_cached) = match cached {
        Some((report, _range)) => (report, SweepStats::default(), true),
        None => {
            let config = SweepConfig {
                shards: resolved_shards(spec, pool),
                threads: pool.workers(),
                seed: spec.seed,
                ..SweepConfig::default()
            };
            let (report, stats) = experiments::prop2_with_stats(&config)?;
            if spec.shard_cache {
                caches.prop2.insert(key, (0, stats.scenarios as usize), report.clone());
            }
            (report, stats, false)
        }
    };
    send_frame(
        reply,
        &Frame::ShardDone(ShardDone {
            job: spec.id,
            case: 0,
            cases: 1,
            shard: 0,
            shards: 1,
            start: 0,
            end: stats.scenarios as usize,
            cached: was_cached,
            stats,
        }),
    );
    Ok(JobSummary {
        result: QueryResult::Prop2(report),
        stats,
        shards_total: 1,
        shards_cached: u64::from(was_cached),
        shards_executed: u64::from(!was_cached),
        shards_remote: 0,
        leases_requeued: 0,
    })
}

/// Result of one case: the merged accumulator, the executed statistics,
/// the warm/cold split, and the fleet accounting of the cold pass.
struct CaseOutcome<A> {
    acc: A,
    stats: SweepStats,
    shards_total: usize,
    shards_cached: usize,
    shards_remote: u64,
    requeues: u64,
}

/// The per-scenario job of a case, as a plain function pointer so pool
/// tasks can capture it without boxing.
type JobFn<I> = fn(&mut BatchRunner, &Scenario) -> Result<I, ModelError>;

/// Everything [`run_case`] needs — bundled because the scheduler is
/// monomorphized per query.
struct CaseContext<'a, S, R: Reducer> {
    pool: &'a WorkerPool,
    reply: &'a Reply,
    fleet: &'a Arc<LeaseTable>,
    /// Phase histograms (`phase.dispatch_us` / `phase.shard_exec_us` /
    /// `phase.merge_us`) recorded by the scheduler.
    metrics: &'a ServerTelemetry,
    /// Which query the case belongs to — remote workers rebuild the
    /// scenario source from `(query, case, lease_scope, seed, shards)`.
    query: QueryKind,
    /// Explicit scope shipped in lease grants (Theorem 1 only).
    lease_scope: Option<ScopeSpec>,
    /// Seed shipped in lease grants (seeded sources only).
    seed: u64,
    job_id: u64,
    case: usize,
    cases: usize,
    shards: usize,
    use_shard_cache: bool,
    cancel: &'a Arc<AtomicBool>,
    source: Arc<S>,
    reducer: Arc<R>,
    job: JobFn<R::Item>,
    cache: &'a ShardCache<R::Acc>,
    fingerprint: JobFingerprint,
    encode_partial: fn(&R::Acc) -> Value,
}

/// Schedules one case: splits its scenario range into block-aligned
/// shards, replays warm shards from the accumulator cache, fans the cold
/// ones out across the persistent pool, streams `shard-done`/`partial`
/// frames as they land, and merges everything in shard order.
///
/// The daemon-side sibling of `sweep::sweep_shards`: both share
/// `shard_ranges` for the partition, `fold_shard_stats` for the per-shard
/// kernel and `try_merge_shard_outcomes` for the law-checked merge, so
/// their folds are bit-identical by construction.  Two hardening details:
///
/// * a cold shard's accumulator is inserted into the cache **before** its
///   `shard-done` frame is streamed, so with a durable store any shard a
///   client observed is replayable after a crash;
/// * a replayed shard carries the *stored* scenario range, so a forged or
///   corrupted persisted entry fails `try_merge_shard_outcomes` as a
///   typed [`JobError::Merge`] (daemon stays alive) instead of silently
///   folding wrong data.
fn run_case<S, R>(context: CaseContext<'_, S, R>) -> Result<CaseOutcome<R::Acc>, JobError>
where
    S: ScenarioSource + Send + Sync + 'static,
    R: Reducer + Send + Sync + 'static,
    R::Acc: Clone + Send + ToWire + FromWire + 'static,
{
    let CaseContext {
        pool,
        reply,
        fleet,
        metrics,
        query,
        lease_scope,
        seed,
        job_id,
        case,
        cases,
        shards,
        use_shard_cache,
        cancel,
        source,
        reducer,
        job,
        cache,
        fingerprint,
        encode_partial,
    } = context;
    let total = source.len();
    let ranges = shard_ranges(total, shards, source.structure_block());
    let shard_count = ranges.len();
    let mut outcomes: Vec<Option<ShardOutcome<R::Acc>>> = (0..shard_count).map(|_| None).collect();
    let mut prefix = PrefixFold::new(&*reducer);
    let mut cold = Vec::new();
    let mut cached_count = 0usize;

    let stream_shard = |outcome: &ShardOutcome<R::Acc>| {
        send_frame(
            reply,
            &Frame::ShardDone(ShardDone {
                job: job_id,
                case,
                cases,
                shard: outcome.shard,
                shards: shard_count,
                start: outcome.range.0,
                end: outcome.range.1,
                cached: outcome.cached,
                stats: outcome.stats,
            }),
        );
    };

    // Warm pass, in shard order: replayed shards stream before any
    // execution starts.  The stored range is used verbatim — validation
    // happens at merge time.
    for (shard, _) in ranges.iter().enumerate() {
        let warm = if use_shard_cache { cache.get(&fingerprint.shard(shard)) } else { None };
        match warm {
            Some((acc, range)) => {
                cached_count += 1;
                let outcome =
                    ShardOutcome { shard, range, cached: true, acc, stats: SweepStats::default() };
                stream_shard(&outcome);
                outcomes[shard] = Some(outcome);
            }
            None => cold.push(shard),
        }
    }
    prefix.emit_if_grown(reply, job_id, case, &ranges, &outcomes, &*reducer, encode_partial);

    // Cold pass: offer every cold shard to the remote fleet first; shards
    // the fleet cannot take (zero workers) or gives up on (exhausted
    // retries, typed rejection) fall back to the local pool, so an empty
    // fleet degrades to exactly the pre-distributed scheduler.  Each local
    // task re-checks the cancel token just before executing, so a revoked
    // job's pending shards drain as fast cancellations instead of
    // occupying the pool.
    enum Completion<A> {
        Local { shard: usize, folded: Result<(A, SweepStats), JobError> },
        Remote { shard: usize, outcome: TaskOutcome },
    }
    let (done_tx, done_rx) = mpsc::channel::<Completion<R::Acc>>();
    let dispatch_local = |shard: usize| {
        let source = Arc::clone(&source);
        let reducer = Arc::clone(&reducer);
        let cancel = Arc::clone(cancel);
        let done_tx = done_tx.clone();
        let range = ranges[shard];
        // The histogram handle is an atomic-backed clone — recording from
        // the pool thread costs two shifts and a relaxed fetch_add.
        let shard_exec_us = metrics.shard_exec_us.clone();
        pool.submit(Box::new(move |state| {
            let folded = if cancel.load(Ordering::Relaxed) {
                Err(JobError::Cancelled)
            } else {
                let exec_started = Instant::now();
                let folded = fold_shard_stats(
                    &*source,
                    &*reducer,
                    &job,
                    &mut state.runner,
                    &mut state.scratch,
                    range,
                    true,
                )
                .map_err(JobError::Model);
                shard_exec_us.observe(exec_started.elapsed());
                folded
            };
            // The dispatcher outlives every task it queues, so the send
            // only fails if it already gave up on the job — nothing to do.
            let _ = done_tx.send(Completion::Local { shard, folded });
        }));
    };
    let dispatch_started = Instant::now();
    for &shard in &cold {
        let remote_tx = done_tx.clone();
        let task = RemoteTask {
            spec: TaskSpec { query, case, scope: lease_scope, seed, shards, shard },
            complete: Box::new(move |outcome| {
                // Fires under the lease-table lock — forward and return.
                let _ = remote_tx.send(Completion::Remote { shard, outcome });
            }),
        };
        if !fleet.submit(task, Instant::now()) {
            dispatch_local(shard);
        }
    }
    if !cold.is_empty() {
        metrics.dispatch_us.observe(dispatch_started.elapsed());
    }

    // Every cold shard produces exactly one terminal completion; a remote
    // shard the fleet hands back re-enters the count via `dispatch_local`
    // (pending unchanged), so the counter is exact.
    let mut first_error: Option<(usize, JobError)> = None;
    let mut shards_remote = 0u64;
    let mut requeues_total = 0u64;
    let mut pending = cold.len();
    while pending > 0 {
        let landed = match done_rx.recv().expect("pool workers alive") {
            Completion::Local { shard, folded } => {
                pending -= 1;
                match folded {
                    Ok((acc, stats)) => Some((shard, acc, stats)),
                    Err(error) => {
                        if first_error.as_ref().is_none_or(|(s, _)| shard < *s) {
                            first_error = Some((shard, error));
                        }
                        None
                    }
                }
            }
            // Remote completions honour cancellation here (the worker has
            // no cancel token), so a fully remote job stays cancellable.
            Completion::Remote { shard, .. } if cancel.load(Ordering::Relaxed) => {
                pending -= 1;
                if first_error.as_ref().is_none_or(|(s, _)| shard < *s) {
                    first_error = Some((shard, JobError::Cancelled));
                }
                None
            }
            Completion::Remote { shard, outcome } => match outcome {
                TaskOutcome::Done { payload, range, stats, requeues } => {
                    requeues_total += requeues;
                    let decoded = if range == ranges[shard] {
                        R::Acc::from_wire(&payload).ok()
                    } else {
                        None
                    };
                    match decoded {
                        Some(acc) => {
                            pending -= 1;
                            shards_remote += 1;
                            Some((shard, acc, stats))
                        }
                        None => {
                            // A range that disagrees with the partition or
                            // a payload that does not decode never reaches
                            // the merge — the shard re-runs locally.
                            telemetry::log::warn(
                                LOG_TARGET,
                                format!(
                                    "sweep serve: job {job_id}: dropping malformed remote \
                                     result for shard {shard} (range {:?}, expected {:?}); \
                                     re-running locally",
                                    range, ranges[shard]
                                ),
                                &[("job", job_id.into()), ("shard", shard.into())],
                            );
                            if first_error.is_some() {
                                pending -= 1;
                            } else {
                                dispatch_local(shard);
                            }
                            None
                        }
                    }
                }
                TaskOutcome::Fallback { requeues } => {
                    requeues_total += requeues;
                    if first_error.is_some() {
                        pending -= 1;
                    } else {
                        dispatch_local(shard);
                    }
                    None
                }
            },
        };
        if let Some((shard, acc, stats)) = landed {
            let outcome = ShardOutcome { shard, range: ranges[shard], cached: false, acc, stats };
            // Insert before streaming: a client that saw shard-done may
            // rely on the shard being durably cached.  Remote results take
            // the same store-before-stream path as local ones.
            if use_shard_cache {
                cache.insert(fingerprint.shard(shard), ranges[shard], outcome.acc.clone());
            }
            stream_shard(&outcome);
            outcomes[shard] = Some(outcome);
            prefix.emit_if_grown(
                reply,
                job_id,
                case,
                &ranges,
                &outcomes,
                &*reducer,
                encode_partial,
            );
        }
    }
    if let Some((_, error)) = first_error {
        return Err(error);
    }

    let outcomes: Vec<ShardOutcome<R::Acc>> =
        outcomes.into_iter().map(|slot| slot.expect("every shard completed")).collect();
    let mut stats = SweepStats::default();
    for outcome in &outcomes {
        stats.merge(outcome.stats);
    }
    let merge_started = Instant::now();
    let merged = try_merge_shard_outcomes(&*reducer, outcomes);
    metrics.merge_us.observe(merge_started.elapsed());
    let acc = merged.map_err(JobError::Merge)?;
    Ok(CaseOutcome {
        acc,
        stats,
        shards_total: shard_count,
        shards_cached: cached_count,
        shards_remote,
        requeues: requeues_total,
    })
}

/// The streamed-preview state of one case: the contiguous completed
/// prefix of its shards, with a running fold so each newly completed
/// shard is merged exactly once (not re-merged from the identity per
/// frame).  Only a contiguous prefix can be previewed — the `Reducer`
/// laws cover merging adjacent slices in order and nothing else.
struct PrefixFold<A> {
    done: usize,
    acc: A,
}

impl<A: Clone> PrefixFold<A> {
    fn new<R: Reducer<Acc = A>>(reducer: &R) -> Self {
        PrefixFold { done: 0, acc: reducer.empty() }
    }

    /// Extends the prefix over newly completed shards and emits a
    /// `partial` frame if it grew.
    #[allow(clippy::too_many_arguments)]
    fn emit_if_grown<R: Reducer<Acc = A>>(
        &mut self,
        reply: &Reply,
        job_id: u64,
        case: usize,
        ranges: &[(usize, usize)],
        outcomes: &[Option<ShardOutcome<A>>],
        reducer: &R,
        encode_partial: fn(&A) -> Value,
    ) {
        let before = self.done;
        while self.done < outcomes.len() {
            let Some(outcome) = &outcomes[self.done] else { break };
            let merged = reducer
                .merge(std::mem::replace(&mut self.acc, reducer.empty()), outcome.acc.clone());
            self.acc = merged;
            self.done += 1;
        }
        if self.done == before || self.done == 0 {
            return;
        }
        send_frame(
            reply,
            &Frame::Partial(Partial {
                job: job_id,
                case,
                shards_done: self.done,
                shards: outcomes.len(),
                scenarios_done: ranges[self.done - 1].1 as u64,
                fold: encode_partial(&self.acc),
            }),
        );
    }
}
