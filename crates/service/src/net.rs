//! Transport: Unix-domain or TCP stream endpoints behind one interface.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

use crate::ServiceError;

/// Where the daemon listens (and clients connect).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at this path (removed again on graceful
    /// shutdown).
    Unix(PathBuf),
    /// A TCP address like `127.0.0.1:4150` (port `0` picks a free port;
    /// [`Listener::local_endpoint`] reports the resolved one).
    Tcp(String),
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A bound listener of either flavor, in non-blocking accept mode (the
/// server polls so a shutdown request can interrupt the accept loop
/// without signal machinery).
#[derive(Debug)]
pub enum Listener {
    /// Unix-domain flavor.
    Unix(UnixListener, PathBuf),
    /// TCP flavor.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds the endpoint.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (address in use, bad path, …).  A stale
    /// socket file from a crashed daemon is *not* auto-removed — two
    /// daemons must not silently steal each other's endpoint.
    pub fn bind(endpoint: &Endpoint) -> Result<Listener, ServiceError> {
        match endpoint {
            Endpoint::Unix(path) => {
                let listener = UnixListener::bind(path)
                    .map_err(|e| ServiceError::io(format!("binding {}", path.display()), e))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| ServiceError::io("setting non-blocking accept", e))?;
                Ok(Listener::Unix(listener, path.clone()))
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)
                    .map_err(|e| ServiceError::io(format!("binding {addr}"), e))?;
                listener
                    .set_nonblocking(true)
                    .map_err(|e| ServiceError::io("setting non-blocking accept", e))?;
                Ok(Listener::Tcp(listener))
            }
        }
    }

    /// The endpoint actually bound — for TCP with port `0`, the resolved
    /// port.
    pub fn local_endpoint(&self) -> Endpoint {
        match self {
            Listener::Unix(_, path) => Endpoint::Unix(path.clone()),
            Listener::Tcp(listener) => Endpoint::Tcp(
                listener.local_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".to_owned()),
            ),
        }
    }

    /// Accepts one connection if one is pending (`Ok(None)` when the
    /// listener would block), restoring the stream to blocking mode.
    ///
    /// # Errors
    ///
    /// Propagates accept failures other than `WouldBlock`.
    pub fn try_accept(&self) -> Result<Option<Stream>, ServiceError> {
        let accepted = match self {
            Listener::Unix(listener, _) => listener.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(listener) => listener.accept().map(|(s, _)| Stream::Tcp(s)),
        };
        match accepted {
            Ok(stream) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| ServiceError::io("restoring blocking mode", e))?;
                Ok(Some(stream))
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(ServiceError::io("accepting a connection", e)),
        }
    }
}

/// How a client establishes (and authenticates) a connection.
#[derive(Debug, Clone, Default)]
pub struct ConnectOptions {
    /// Total budget for connect retries.  [`Duration::ZERO`] (the
    /// default) makes exactly one attempt — library callers and tests
    /// stay fail-fast; the CLI opts into retries explicitly.
    pub timeout: Duration,
    /// Shared secret sent as a `hello` frame right after connecting to a
    /// TCP endpoint (Unix sockets are exempt from auth).
    pub auth_token: Option<String>,
}

/// Connect failures worth retrying while a daemon is still coming up:
/// nobody listening yet (refused / socket file absent), or a listener
/// backlog race (reset / aborted / timed out).
fn retryable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotFound
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::TimedOut
    )
}

/// A connected stream of either flavor.
#[derive(Debug)]
pub enum Stream {
    /// Unix-domain flavor.
    Unix(UnixStream),
    /// TCP flavor.
    Tcp(TcpStream),
}

impl Stream {
    /// Connects to a daemon endpoint.
    ///
    /// # Errors
    ///
    /// Propagates connect failures (no daemon listening, bad address, …).
    pub fn connect(endpoint: &Endpoint) -> Result<Stream, ServiceError> {
        match endpoint {
            Endpoint::Unix(path) => UnixStream::connect(path)
                .map(Stream::Unix)
                .map_err(|e| ServiceError::io(format!("connecting to {}", path.display()), e)),
            Endpoint::Tcp(addr) => TcpStream::connect(addr)
                .map(Stream::Tcp)
                .map_err(|e| ServiceError::io(format!("connecting to {addr}"), e)),
        }
    }

    /// Connects like [`Stream::connect`], but keeps retrying retryable
    /// failures (daemon not up yet) with capped exponential backoff until
    /// `timeout` elapses.  A zero timeout makes a single attempt.
    ///
    /// # Errors
    ///
    /// Returns the last connect failure once the budget is exhausted, and
    /// non-retryable failures (bad address, permission) immediately.
    pub fn connect_with(endpoint: &Endpoint, timeout: Duration) -> Result<Stream, ServiceError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut backoff = Duration::from_millis(25);
        loop {
            match Self::connect(endpoint) {
                Ok(stream) => return Ok(stream),
                Err(error) => {
                    let retry = match &error {
                        ServiceError::Io { source, .. } => retryable(source.kind()),
                        _ => false,
                    };
                    let now = std::time::Instant::now();
                    if !retry || now >= deadline {
                        return Err(error);
                    }
                    std::thread::sleep(backoff.min(deadline.saturating_duration_since(now)));
                    backoff = (backoff * 2).min(Duration::from_millis(500));
                }
            }
        }
    }

    /// Clones the underlying socket handle (reader/writer split).
    ///
    /// # Errors
    ///
    /// Propagates `try_clone` failures.
    pub fn try_clone(&self) -> Result<Stream, ServiceError> {
        match self {
            Stream::Unix(s) => s
                .try_clone()
                .map(Stream::Unix)
                .map_err(|e| ServiceError::io("cloning a unix stream", e)),
            Stream::Tcp(s) => s
                .try_clone()
                .map(Stream::Tcp)
                .map_err(|e| ServiceError::io("cloning a tcp stream", e)),
        }
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_nonblocking(nonblocking),
            Stream::Tcp(s) => s.set_nonblocking(nonblocking),
        }
    }

    /// Sets the read timeout — the server uses this so a connection thread
    /// parked in `read_line` on an idle client wakes up periodically to
    /// observe the shutdown flag.
    ///
    /// # Errors
    ///
    /// Propagates `set_read_timeout` failures.
    pub fn set_read_timeout(&self, timeout: Option<std::time::Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(timeout),
            Stream::Tcp(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}
