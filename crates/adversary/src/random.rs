//! Seeded random adversary generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use synchrony::{Adversary, FailurePattern, InputVector};

/// Configuration of a random adversary distribution.
///
/// Values are drawn uniformly from `{0, …, max_value}`; each process
/// independently crashes with probability `crash_probability` (subject to the
/// budget `t`), at a uniformly random round in `{1, …, max_crash_round}`,
/// delivering its final messages to a uniformly random subset of processes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomConfig {
    /// Number of processes.
    pub n: usize,
    /// Maximum number of crashes per adversary.
    pub t: usize,
    /// Largest initial value (the domain is `{0, …, max_value}`).
    pub max_value: u64,
    /// Latest round in which a crash may occur.
    pub max_crash_round: u32,
    /// Per-process crash probability (before the budget is applied).
    pub crash_probability: f64,
}

impl RandomConfig {
    /// A reasonable default distribution for a system of `n` processes with
    /// failure bound `t` and value domain `{0, …, k}`.
    pub fn new(n: usize, t: usize, k: usize) -> Self {
        RandomConfig {
            n,
            t,
            max_value: k as u64,
            max_crash_round: (t / k.max(1)) as u32 + 1,
            crash_probability: 0.5,
        }
    }
}

/// A deterministic, seeded generator of random adversaries.
///
/// ```
/// use adversary::{RandomConfig, RandomAdversaries};
///
/// let mut gen = RandomAdversaries::new(RandomConfig::new(6, 3, 2), 42);
/// let batch = gen.batch(10);
/// assert_eq!(batch.len(), 10);
/// for adversary in &batch {
///     assert!(adversary.num_failures() <= 3);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RandomAdversaries {
    config: RandomConfig,
    rng: StdRng,
}

impl RandomAdversaries {
    /// Creates a generator with the given configuration and seed.
    pub fn new(config: RandomConfig, seed: u64) -> Self {
        RandomAdversaries { config, rng: StdRng::seed_from_u64(seed) }
    }

    /// Returns the generator's configuration.
    pub fn config(&self) -> &RandomConfig {
        &self.config
    }

    /// Draws the next adversary from the distribution.
    pub fn next_adversary(&mut self) -> Adversary {
        let c = &self.config;
        let inputs: Vec<u64> = (0..c.n).map(|_| self.rng.random_range(0..=c.max_value)).collect();
        let mut failures = FailurePattern::crash_free(c.n);
        let mut crashed = 0;
        for p in 0..c.n {
            if crashed >= c.t || !self.rng.random_bool(c.crash_probability) {
                continue;
            }
            let round = self.rng.random_range(1..=c.max_crash_round.max(1));
            let delivered: Vec<usize> = (0..c.n).filter(|_| self.rng.random_bool(0.5)).collect();
            failures
                .crash(p, round, delivered)
                .expect("generated crash parameters are always in range");
            crashed += 1;
        }
        Adversary::new(InputVector::from_values(inputs), failures)
            .expect("generated adversaries are always well formed")
    }

    /// Draws a batch of adversaries.
    pub fn batch(&mut self, count: usize) -> Vec<Adversary> {
        (0..count).map(|_| self.next_adversary()).collect()
    }
}

impl Iterator for RandomAdversaries {
    type Item = Adversary;

    fn next(&mut self) -> Option<Adversary> {
        Some(self.next_adversary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = RandomConfig::new(5, 2, 2);
        let a: Vec<Adversary> = RandomAdversaries::new(config, 7).batch(5);
        let b: Vec<Adversary> = RandomAdversaries::new(config, 7).batch(5);
        assert_eq!(a, b);
        let c: Vec<Adversary> = RandomAdversaries::new(config, 8).batch(5);
        assert_ne!(a, c);
    }

    #[test]
    fn budget_and_value_domain_are_respected() {
        let config =
            RandomConfig { n: 8, t: 3, max_value: 2, max_crash_round: 2, crash_probability: 0.9 };
        let mut gen = RandomAdversaries::new(config, 1);
        for adversary in gen.batch(50) {
            assert!(adversary.num_failures() <= 3);
            assert!(adversary.inputs().check_max_value(2).is_ok());
            for (_, fault) in adversary.failures().faulty() {
                assert!(fault.round().number() <= 2);
            }
        }
    }

    #[test]
    fn iterator_interface_yields_adversaries() {
        let config = RandomConfig::new(4, 1, 1);
        let gen = RandomAdversaries::new(config, 3);
        assert_eq!(gen.take(7).count(), 7);
    }
}
