//! Pluggable pattern spaces: the [`PatternSpace`] trait and the
//! omission-fault space.
//!
//! The sweep engine enumerates adversaries as `pattern-major` blocks: every
//! failure pattern is crossed with every input vector, and everything
//! downstream — the block cursor, run-structure reuse, shard alignment, the
//! service's shard-accumulator cache — is keyed on the *rank* of a pattern
//! within its space.  [`PatternSpace`] abstracts exactly the piece that
//! varies between fault models: how many patterns a scope contains and how a
//! rank decodes into a [`FailurePattern`].  Two spaces implement it:
//!
//! * [`crate::enumerate::CrashSpace`] — the paper's `t`-crash model
//!   (crashing round plus partial-delivery subset per faulty process);
//! * [`OmissionSpace`] — per-round *send omissions* with a mobile failure
//!   budget: in every round independently, at most `t` senders each drop a
//!   nonempty subset of their outgoing messages, and nobody ever crashes.
//!
//! # The conformance contract
//!
//! A conforming space must guarantee, for every `rank < num_patterns()`:
//!
//! 1. **Total order** — `pattern_at(rank)` is defined and deterministic;
//!    distinct ranks decode to distinct patterns.
//! 2. **Reference agreement** — the rank order matches the space's
//!    materialized reference enumeration (`failure_patterns` /
//!    [`omission_patterns`]), which is what pins enumeration order across
//!    refactors.
//! 3. **Scope closure** — every decoded pattern ranges over exactly `n()`
//!    processes, so a single scratch [`synchrony::Adversary`] can absorb any
//!    pattern of the space in place (`set_failures` never changes `n`).
//!
//! Rule 3 is what keeps the shard/block alignment invariant of the sweep
//! engine model-agnostic: `AdversarySpace` crosses any conforming space with
//! the mixed-radix input enumeration, so structure blocks, shard alignment
//! and the cursor's in-place stepping work identically for every model.  The
//! generic conformance suite in `crates/adversary/tests/conformance.rs`
//! checks all of the above against both spaces.

use std::fmt;

use synchrony::{FailurePattern, ModelError, Round};

use crate::enumerate::{delivered_from_mask, subtree_table};

/// The fault-model discriminant of a [`PatternSpace`] — part of every
/// service cache key, so accumulators of different models can never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternModel {
    /// The paper's `t`-crash model ([`crate::enumerate::CrashSpace`]).
    Crash,
    /// Mobile per-round send omissions ([`OmissionSpace`]).
    Omission,
}

impl PatternModel {
    /// The canonical (wire and fingerprint) name of the model.
    pub fn name(self) -> &'static str {
        match self {
            PatternModel::Crash => "crash",
            PatternModel::Omission => "omission",
        }
    }

    /// Parses a canonical model name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "crash" => Some(PatternModel::Crash),
            "omission" => Some(PatternModel::Omission),
            _ => None,
        }
    }
}

impl fmt::Display for PatternModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A rankable space of failure patterns — the model-specific core an
/// `AdversarySpace` crosses with the input-vector enumeration.
///
/// See the [module docs](self) for the conformance contract; the rank/unrank
/// machinery behind both implementations is the same `O(n · t)` subtree-count
/// table (`subtree_table`), so `pattern_at` is `O(n · t)` per pattern with
/// per-scope state independent of `num_patterns()`.
pub trait PatternSpace: fmt::Debug + Send + Sync {
    /// The fault-model discriminant.
    fn model(&self) -> PatternModel;

    /// Number of processes every pattern of the space ranges over.
    fn n(&self) -> usize;

    /// Largest initial value of the scope's input domain (`{0, …, max}`) —
    /// the input crossing is model-independent, but the domain is part of
    /// the scope.
    fn max_value(&self) -> u64;

    /// Total number of failure patterns in the space.
    fn num_patterns(&self) -> u128;

    /// Decodes the pattern at position `rank` of the space's total order.
    ///
    /// # Panics
    ///
    /// Panics if `rank ≥ num_patterns()`.
    fn pattern_at(&self, rank: u128) -> FailurePattern;
}

/// The scope of an exhaustive send-omission enumeration.
///
/// In every round `1 … rounds` *independently* — the budget is **mobile**,
/// a different set of processes may be faulty each round — at most `t`
/// senders each drop a nonempty subset of their `n − 1` outgoing messages.
/// No process ever crashes, so every process runs (and must decide) in every
/// pattern of the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OmissionConfig {
    /// Number of processes.
    pub n: usize,
    /// Maximum number of omitting senders per round.
    pub t: usize,
    /// Largest initial value (the domain is `{0, …, max_value}`).
    pub max_value: u64,
    /// Number of rounds in which omissions may occur (`1 … rounds`).
    pub rounds: u32,
}

impl OmissionConfig {
    /// A small default scope suitable for exhaustive checks in tests,
    /// mirroring [`crate::enumerate::EnumerationConfig::small`]'s two-round
    /// horizon.
    pub fn small(n: usize, t: usize, max_value: u64) -> Self {
        OmissionConfig { n, t, max_value, rounds: 2 }
    }

    /// Returns the number of input vectors the scope contains.
    pub fn num_input_vectors(&self) -> u128 {
        (self.max_value as u128 + 1).pow(self.n as u32)
    }

    /// Returns the number of single-round omission assignments: the empty
    /// assignment plus every choice of up to `t` ordered senders, each with
    /// one of the `2^(n−1) − 1` nonempty dropped subsets.
    pub fn patterns_per_round(&self) -> u128 {
        subtree_table(self.n, self.t.min(self.n), self.subset_choices())[0][self.t.min(self.n)]
    }

    /// Returns the number of failure patterns the scope contains:
    /// `patterns_per_round() ^ rounds` (rounds are independent).
    pub fn num_failure_patterns(&self) -> u128 {
        self.patterns_per_round().pow(self.rounds)
    }

    /// Returns the total number of adversaries the scope contains.
    pub fn num_adversaries(&self) -> u128 {
        self.num_input_vectors() * self.num_failure_patterns()
    }

    /// Nonempty dropped-subset choices per omitting sender.
    fn subset_choices(&self) -> u128 {
        (1u128 << (self.n - 1)) - 1
    }
}

/// The send-omission [`PatternSpace`]: rank/unrank over
/// [`OmissionConfig`] scopes.
///
/// The rank is a mixed-radix numeral over rounds in base
/// [`OmissionConfig::patterns_per_round`], **round 1 most significant**, so
/// the order is lexicographic by round.  Within one round the digit is
/// unranked by the same preorder subtree walk the crash space uses, with
/// `2^(n−1) − 1` nonempty dropped subsets taking the place of the crash's
/// `(round, delivery subset)` choices.
#[derive(Debug, Clone)]
pub struct OmissionSpace {
    config: OmissionConfig,
    /// Subtree sizes of the single-round recursive enumeration (see
    /// `subtree_table`) — shared by every round, since rounds are
    /// independent and identically shaped.
    round_table: Vec<Vec<u128>>,
    per_round: u128,
    num_patterns: u128,
}

impl OmissionSpace {
    /// Prepares the lazy unranker for the scope, in `O(n² · t)` time and
    /// `O(n · t)` memory regardless of the scope's size.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is degenerate (fewer than two
    /// processes).
    pub fn new(config: OmissionConfig) -> Result<Self, ModelError> {
        if config.n < 2 {
            return Err(ModelError::TooFewProcesses { n: config.n });
        }
        let budget = config.t.min(config.n);
        let round_table = subtree_table(config.n, budget, config.subset_choices());
        let per_round = round_table[0][budget];
        let num_patterns = per_round.pow(config.rounds);
        Ok(OmissionSpace { config, round_table, per_round, num_patterns })
    }

    /// Returns the enumeration scope.
    pub fn config(&self) -> &OmissionConfig {
        &self.config
    }

    /// Decodes one round's digit into omissions on `pattern`.
    fn unrank_round(&self, round: Round, mut rank: u128, pattern: &mut FailurePattern) {
        let n = self.config.n;
        let s = self.config.subset_choices();
        let budget_cap = self.config.t.min(n);
        let mut from = 0usize;
        let mut budget = budget_cap;
        loop {
            debug_assert!(rank < self.round_table[from][budget], "round rank outside the subtree");
            if rank == 0 {
                return;
            }
            // Skip the subtree root (the assignment as built so far), then
            // walk the per-sender blocks: sender `p` contributes `s` nonempty
            // dropped subsets, each heading a subtree rooted at `p + 1` with
            // one less sender in the budget.
            rank -= 1;
            let mut p = from;
            loop {
                debug_assert!(p < n, "round rank exhausted the sender blocks");
                let sub = self.round_table[p + 1][budget - 1];
                let block = s * sub;
                if rank < block {
                    let choice = rank / sub;
                    rank %= sub;
                    // Choice `c` is the nonempty mask `c + 1` over the other
                    // `n − 1` processes, in the shared bit convention.
                    let mask = choice + 1;
                    pattern
                        .omit(p, round.number(), delivered_from_mask(n, p, mask))
                        .expect("unranked omission parameters are always valid");
                    from = p + 1;
                    budget -= 1;
                    break;
                }
                rank -= block;
                p += 1;
            }
        }
    }
}

impl PatternSpace for OmissionSpace {
    fn model(&self) -> PatternModel {
        PatternModel::Omission
    }

    fn n(&self) -> usize {
        self.config.n
    }

    fn max_value(&self) -> u64 {
        self.config.max_value
    }

    fn num_patterns(&self) -> u128 {
        self.num_patterns
    }

    fn pattern_at(&self, rank: u128) -> FailurePattern {
        assert!(
            rank < self.num_patterns,
            "pattern rank {rank} outside the scope of {:?}",
            self.config
        );
        let mut pattern = FailurePattern::crash_free(self.config.n);
        // Mixed radix over rounds, round 1 most significant: peel digits
        // from the least significant (last round) end, apply in round order.
        let rounds = self.config.rounds as usize;
        let mut digits = vec![0u128; rounds];
        let mut rest = rank;
        for digit in digits.iter_mut().rev() {
            *digit = rest % self.per_round;
            rest /= self.per_round;
        }
        for (index, digit) in digits.iter().enumerate() {
            self.unrank_round(Round::new(index as u32 + 1), *digit, &mut pattern);
        }
        pattern
    }
}

/// Enumerates every omission pattern of the scope, in [`OmissionSpace`] rank
/// order — the materialized reference the conformance suite pins the lazy
/// unranking against (the omission counterpart of
/// [`crate::enumerate::failure_patterns`]).
pub fn omission_patterns(config: &OmissionConfig) -> Vec<FailurePattern> {
    // Preorder of one round's assignments: each entry lists
    // `(sender, nonempty dropped mask)` pairs in recursion order.
    let mut assignments: Vec<Vec<(usize, u128)>> = Vec::new();
    let subsets = config.subset_choices();
    fn extend(
        n: usize,
        t: usize,
        subsets: u128,
        from: usize,
        current: &mut Vec<(usize, u128)>,
        out: &mut Vec<Vec<(usize, u128)>>,
    ) {
        out.push(current.clone());
        if current.len() >= t {
            return;
        }
        for sender in from..n {
            for mask in 1..=subsets {
                current.push((sender, mask));
                extend(n, t, subsets, sender + 1, current, out);
                current.pop();
            }
        }
    }
    extend(config.n, config.t.min(config.n), subsets, 0, &mut Vec::new(), &mut assignments);

    // Cartesian product over rounds, round 1 most significant (later rounds
    // vary fastest).
    let mut out = Vec::new();
    fn build(
        config: &OmissionConfig,
        assignments: &[Vec<(usize, u128)>],
        round: u32,
        pattern: &FailurePattern,
        out: &mut Vec<FailurePattern>,
    ) {
        if round > config.rounds {
            out.push(pattern.clone());
            return;
        }
        for assignment in assignments {
            let mut next = pattern.clone();
            for &(sender, mask) in assignment {
                next.omit(sender, round, delivered_from_mask(config.n, sender, mask))
                    .expect("enumerated omission parameters are always valid");
            }
            build(config, assignments, round + 1, &next, out);
        }
    }
    build(config, &assignments, 1, &FailurePattern::crash_free(config.n), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_names_round_trip() {
        for model in [PatternModel::Crash, PatternModel::Omission] {
            assert_eq!(PatternModel::parse(model.name()), Some(model));
        }
        assert_eq!(PatternModel::parse("byzantine"), None);
    }

    #[test]
    fn omission_counts_match_the_reference_enumeration() {
        for config in [
            OmissionConfig::small(3, 1, 1),
            OmissionConfig::small(3, 2, 1),
            OmissionConfig { n: 4, t: 1, max_value: 0, rounds: 1 },
            OmissionConfig { n: 2, t: 1, max_value: 1, rounds: 3 },
            // A budget beyond n, exercising the clamp.
            OmissionConfig { n: 3, t: 9, max_value: 0, rounds: 1 },
        ] {
            let reference = omission_patterns(&config);
            assert_eq!(reference.len() as u128, config.num_failure_patterns(), "{config:?}");
            let space = OmissionSpace::new(config).unwrap();
            assert_eq!(space.num_patterns(), reference.len() as u128, "{config:?}");
        }
    }

    #[test]
    fn unranking_matches_the_reference_enumeration() {
        for config in [
            OmissionConfig::small(3, 1, 1),
            OmissionConfig::small(3, 2, 1),
            OmissionConfig { n: 4, t: 1, max_value: 0, rounds: 2 },
            OmissionConfig { n: 2, t: 1, max_value: 1, rounds: 3 },
        ] {
            let space = OmissionSpace::new(config).unwrap();
            let reference = omission_patterns(&config);
            for (rank, expected) in reference.iter().enumerate() {
                assert_eq!(
                    &space.pattern_at(rank as u128),
                    expected,
                    "divergence at rank {rank} of {config:?}"
                );
            }
        }
    }

    #[test]
    fn every_pattern_respects_the_mobile_budget() {
        let config = OmissionConfig::small(3, 1, 1);
        for pattern in omission_patterns(&config) {
            assert_eq!(pattern.num_faulty(), 0, "omission patterns never crash");
            for round in 1..=config.rounds {
                assert!(
                    pattern.omitters_in_round(Round::new(round)).len() <= config.t,
                    "budget exceeded in round {round} of {pattern}"
                );
            }
            for round in config.rounds + 1..=config.rounds + 2 {
                assert!(pattern.omitters_in_round(Round::new(round)).is_empty());
            }
        }
    }

    #[test]
    fn patterns_are_pairwise_distinct() {
        let config = OmissionConfig { n: 3, t: 1, max_value: 0, rounds: 2 };
        let patterns = omission_patterns(&config);
        for (i, a) in patterns.iter().enumerate() {
            for b in patterns.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn degenerate_scopes_are_rejected() {
        assert!(OmissionSpace::new(OmissionConfig::small(1, 1, 0)).is_err());
    }

    #[test]
    fn round_one_is_the_most_significant_digit() {
        let config = OmissionConfig { n: 3, t: 1, max_value: 0, rounds: 2 };
        let space = OmissionSpace::new(config).unwrap();
        let per_round = config.patterns_per_round();
        // Rank 0 is omission-free; rank 1 differs only in the *last* round.
        assert!(!space.pattern_at(0).has_omissions());
        let second = space.pattern_at(1);
        assert!(second.omitters_in_round(Round::new(1)).is_empty());
        assert!(!second.omitters_in_round(Round::new(2)).is_empty());
        // Rank `per_round` flips the round-1 digit to its first nonempty
        // assignment and resets round 2.
        let rolled = space.pattern_at(per_round);
        assert!(!rolled.omitters_in_round(Round::new(1)).is_empty());
        assert!(rolled.omitters_in_round(Round::new(2)).is_empty());
    }
}
