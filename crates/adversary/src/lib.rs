//! Adversary generators for the synchronous crash-failure model.
//!
//! An adversary is an input vector plus a failure pattern (see the
//! `synchrony` crate).  This crate provides every adversary family used by
//! the reproduction of *Unbeatable Set Consensus via Topological and
//! Combinatorial Reasoning*:
//!
//! * [`random`] — seeded random adversaries for property tests and
//!   decision-time surveys;
//! * [`scenarios`] — the constructions behind the paper's figures: the
//!   hidden-path run of Fig. 1, the hidden-capacity chains of Fig. 2, and the
//!   Fig. 4-style family on which `u-Pmin[k]` decides at time 2 while every
//!   failure-counting protocol waits for `⌊t/k⌋ + 1` rounds;
//! * [`lemma2`] — the constructive witness-run builder of Lemma 2, the
//!   engine of the unbeatability proof;
//! * [`enumerate`] — exhaustive enumeration of all adversaries of a small
//!   system, used to spot-check the optimality claims;
//! * [`space`] — the [`PatternSpace`] trait behind pluggable fault models
//!   (the paper's crash space plus the mobile send-omission space) and the
//!   conformance contract every space must honor.
//!
//! ```
//! use adversary::scenarios;
//!
//! // The run family of Fig. 4, for k = 3 and t = 12.
//! let scenario = scenarios::uniform_gap(3, 4, 3)?;
//! assert_eq!(scenario.t, 12);
//! assert_eq!(scenario.adversary.num_failures(), 12);
//! # Ok::<(), synchrony::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod enumerate;
pub mod lemma2;
pub mod random;
pub mod scenarios;
pub mod space;

pub use enumerate::{AdversarySpace, CrashSpace, EnumerationConfig};
pub use lemma2::WitnessScenario;
pub use random::{RandomAdversaries, RandomConfig};
pub use scenarios::{HiddenCapacityScenario, UniformGapScenario};
pub use space::{OmissionConfig, OmissionSpace, PatternModel, PatternSpace};
