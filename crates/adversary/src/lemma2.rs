//! The witness-run construction of Lemma 2.
//!
//! Lemma 2 is the combinatorial engine behind the unbeatability proof: if a
//! node `⟨i, m⟩` has hidden capacity `c`, then for *any* `c` values
//! `v₁, …, v_c` there exists a run `r′`, indistinguishable from `r` to
//! `⟨i, m⟩`, in which `c` disjoint hidden crash chains carry those values —
//! so each value may, for all `i` knows, be held by a distinct active process
//! at time `m`.
//!
//! [`witness_adversary`] builds such an `r′` constructively, following the
//! proof: the layer-0 witnesses are re-assigned the chosen initial values,
//! every layer-`ℓ` witness (for `ℓ < m`) crashes at time `ℓ` delivering only
//! to its successor in the chain, and each witness otherwise receives exactly
//! the messages the observer received (plus a message from the observer and
//! from its predecessor).

use std::fmt;

use knowledge::ViewAnalysis;
use synchrony::{
    Adversary, FailurePattern, InputVector, ModelError, Node, ProcessId, Run, Time, Value,
};

/// A constructed Lemma 2 witness scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct WitnessScenario {
    /// The adversary of the constructed run `r′`.
    pub adversary: Adversary,
    /// The observer node `⟨i, m⟩` the construction is indistinguishable to.
    pub observer: Node,
    /// `chains[b][ℓ]` is the layer-`ℓ` witness of chain `b`.
    pub chains: Vec<Vec<ProcessId>>,
    /// The value carried by each chain.
    pub values: Vec<Value>,
}

impl fmt::Display for WitnessScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lemma 2 witness run for {} with {} chains", self.observer, self.chains.len())
    }
}

/// Builds the Lemma 2 witness run for `observer` in `run`, carrying `values`.
///
/// The observer must have hidden capacity at least `values.len()`, and the
/// witnesses are chosen "freshly hidden" (their previous node is seen by the
/// observer), exactly as in the proof of Lemma 2.  The resulting adversary
/// `α′` satisfies:
///
/// * the view of the observer is identical in `r` and `r′ = fip[α′]`;
/// * chain `b`'s layer-`ℓ` witness knows value `values[b]` at time `ℓ`, and
///   knows no other value the observer does not know;
/// * each witness node is hidden from the observer, with hidden capacity at
///   least `values.len() − 1` of its own.
///
/// # Errors
///
/// Returns an error if the observer's hidden capacity is smaller than the
/// number of values, or if no family of fresh, per-layer-distinct witnesses
/// exists (which cannot happen for the scenario families in this crate).
pub fn witness_adversary(
    run: &Run,
    observer: Node,
    values: &[Value],
) -> Result<WitnessScenario, ModelError> {
    let analysis = ViewAnalysis::new(run, observer)?;
    let c = values.len();
    if analysis.hidden_capacity() < c {
        return Err(ModelError::InvalidTaskParameter {
            reason: format!(
                "observer {} has hidden capacity {}, need at least {c}",
                observer,
                analysis.hidden_capacity()
            ),
        });
    }
    let m = observer.time.index();

    // Select per-layer witnesses: distinct within a layer by construction, and
    // distinct across layers 0..m because a hidden node at layer ℓ < m whose
    // previous node is seen corresponds to a process crashing exactly in round
    // ℓ + 1.  Layer-m witnesses are chosen avoiding all earlier picks.
    let mut used = synchrony::PidSet::new();
    let mut layers: Vec<Vec<ProcessId>> = Vec::with_capacity(m + 1);
    for layer in 0..=m {
        let time = Time::new(layer as u32);
        let mut picks = Vec::with_capacity(c);
        for p in analysis.hidden_at(time).iter() {
            if picks.len() == c {
                break;
            }
            // Fresh witnesses: the node one step earlier must be seen (always
            // true at layer 0).
            let fresh = layer == 0 || analysis.seen().contains_node(p, Time::new(layer as u32 - 1));
            if fresh && !used.contains(p) {
                picks.push(p);
            }
        }
        if picks.len() < c {
            return Err(ModelError::InvalidTaskParameter {
                reason: format!(
                    "could not select {c} fresh witnesses at layer {layer} for {observer}"
                ),
            });
        }
        for &p in &picks {
            used.insert(p);
        }
        layers.push(picks);
    }

    // Re-index as chains: chains[b][ℓ].
    let chains: Vec<Vec<ProcessId>> =
        (0..c).map(|b| (0..=m).map(|layer| layers[layer][b]).collect()).collect();

    // Build the modified adversary.
    let n = run.n();
    let mut inputs = InputVector::from_values(
        (0..n).map(|p| run.inputs().value_of(p).get()).collect::<Vec<_>>(),
    );
    for (b, chain) in chains.iter().enumerate() {
        inputs = inputs.with_value(chain[0], values[b]);
    }

    let mut failures = FailurePattern::crash_free(n);
    let witness_of_layer =
        |p: ProcessId| -> Option<usize> { (0..m).find(|&layer| layers[layer].contains(&p)) };
    for p in 0..n {
        let pid = ProcessId::new(p);
        if let Some(layer) = witness_of_layer(pid) {
            // Change 2: the layer-ℓ witness fails at time ℓ, reaching only its
            // chain successor.
            let b = (0..c).find(|&b| chains[b][layer] == pid).expect("pid is a witness");
            let successor = chains[b][layer + 1];
            failures.crash(pid, (layer + 1) as u32, [successor])?;
        } else if layers[m].contains(&pid) {
            // Layer-m witnesses are kept alive (w.l.o.g. in the proof).
        } else if let Some(fault) = run.failures().fault(pid) {
            // Change 3 for other crashing processes: each witness at layer
            // ℓ ≥ 1 receives in round ℓ exactly what the observer receives,
            // so a crashing sender delivers to the witness iff it delivers to
            // the observer.
            let round = fault.round();
            let mut delivered: Vec<ProcessId> = fault.delivered().iter().collect();
            if round.end_time() <= observer.time {
                let layer = round.number() as usize;
                let delivers_to_observer =
                    pid == observer.process || fault.delivered().contains(observer.process);
                for b in 0..c {
                    let witness = chains[b][layer.min(m)];
                    if layer <= m {
                        if delivers_to_observer {
                            if !delivered.contains(&witness) {
                                delivered.push(witness);
                            }
                        } else {
                            delivered.retain(|&w| w != witness);
                        }
                    }
                }
            }
            failures.crash(pid, round.number(), delivered)?;
        }
    }

    let adversary = Adversary::new(inputs, failures)?;
    Ok(WitnessScenario { adversary, observer, chains, values: values.to_vec() })
}

/// Convenience: regenerates the witness run itself (rather than just its
/// adversary) with the same parameters and horizon as the original run.
///
/// # Errors
///
/// Propagates errors from [`witness_adversary`] and from the run generation.
pub fn witness_run(
    run: &Run,
    observer: Node,
    values: &[Value],
) -> Result<(WitnessScenario, Run), ModelError> {
    let scenario = witness_adversary(run, observer, values)?;
    // The witness construction can only remove crashes of layer-m witnesses or
    // re-time crashes of earlier witnesses, so the original failure budget
    // still applies; re-use the original system parameters.
    let new_run = Run::generate(*run.params(), scenario.adversary.clone(), run.horizon())?;
    Ok((scenario, new_run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::hidden_capacity_chains;
    use synchrony::{SystemParams, View};

    fn fig2_run(k: usize, depth: usize) -> (Run, ProcessId) {
        let scenario = hidden_capacity_chains(k * (depth + 1) + 3, k, depth).unwrap();
        let t = scenario.adversary.num_failures();
        let params = SystemParams::new(scenario.adversary.n(), t).unwrap();
        let run =
            Run::generate(params, scenario.adversary.clone(), Time::new(depth as u32 + 1)).unwrap();
        (run, scenario.observer)
    }

    #[test]
    fn witness_run_is_indistinguishable_to_the_observer() {
        for k in 2..=3usize {
            let (run, observer_pid) = fig2_run(k, 2);
            let observer = Node::new(observer_pid, Time::new(2));
            let values: Vec<Value> = (0..k as u64).map(Value::new).collect();
            let (scenario, witness) = witness_run(&run, observer, &values).unwrap();
            assert_eq!(scenario.chains.len(), k);
            let original_view = View::extract(&run, observer);
            let witness_view = View::extract(&witness, observer);
            assert!(
                original_view.indistinguishable_from(&witness_view),
                "k = {k}: observer can distinguish the Lemma 2 run"
            );
        }
    }

    #[test]
    fn each_chain_carries_its_value_to_every_layer() {
        let (run, observer_pid) = fig2_run(3, 2);
        let observer = Node::new(observer_pid, Time::new(2));
        let values = vec![Value::new(0), Value::new(1), Value::new(2)];
        let (scenario, witness) = witness_run(&run, observer, &values).unwrap();
        for (b, chain) in scenario.chains.iter().enumerate() {
            for (layer, &member) in chain.iter().enumerate() {
                let analysis =
                    ViewAnalysis::new(&witness, Node::new(member, Time::new(layer as u32)))
                        .unwrap();
                assert!(
                    analysis.vals().contains(values[b]),
                    "chain {b} layer {layer} does not know value {}",
                    values[b]
                );
            }
        }
    }

    #[test]
    fn witnesses_remain_hidden_with_residual_capacity() {
        let (run, observer_pid) = fig2_run(3, 2);
        let observer = Node::new(observer_pid, Time::new(2));
        let values = vec![Value::new(0), Value::new(1), Value::new(2)];
        let (scenario, witness) = witness_run(&run, observer, &values).unwrap();
        let observer_analysis = ViewAnalysis::new(&witness, observer).unwrap();
        for chain in &scenario.chains {
            for (layer, &member) in chain.iter().enumerate() {
                assert!(
                    observer_analysis
                        .status_of(Node::new(member, Time::new(layer as u32)))
                        .is_hidden(),
                    "witness at layer {layer} is not hidden in the constructed run"
                );
            }
        }
        // Lemma 2(c): each layer-m witness has hidden capacity ≥ c − 1.
        for chain in &scenario.chains {
            let top = chain[2];
            let analysis = ViewAnalysis::new(&witness, Node::new(top, Time::new(2))).unwrap();
            assert!(analysis.hidden_capacity() >= 2);
        }
    }

    #[test]
    fn capacity_shortfall_is_rejected() {
        let (run, observer_pid) = fig2_run(2, 2);
        let observer = Node::new(observer_pid, Time::new(2));
        let values = vec![Value::new(0), Value::new(1), Value::new(2)];
        assert!(witness_adversary(&run, observer, &values).is_err());
    }
}
