//! Exhaustive enumeration of adversaries for small systems.
//!
//! Unbeatability is a statement about *all* runs; for small systems the space
//! of adversaries is finite and can be enumerated outright, which is how the
//! experiment harness spot-checks the paper's optimality claims (experiment
//! E7 in `DESIGN.md`).  The enumeration covers every input vector over
//! `{0, …, max_value}` and every failure pattern with at most `t` crashes in
//! rounds `1 … max_crash_round`, with every possible delivery subset in the
//! crashing round.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use synchrony::{Adversary, FailurePattern, InputVector, ModelError};

use crate::space::{OmissionConfig, OmissionSpace, PatternModel, PatternSpace};

/// The scope of an exhaustive enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnumerationConfig {
    /// Number of processes.
    pub n: usize,
    /// Maximum number of crashes per adversary.
    pub t: usize,
    /// Largest initial value (the domain is `{0, …, max_value}`).
    pub max_value: u64,
    /// Latest round in which a crash may occur.
    pub max_crash_round: u32,
    /// Whether crashing processes may deliver to arbitrary subsets (`true`) or
    /// only crash silently (`false`), which shrinks the space considerably.
    pub partial_delivery: bool,
}

impl EnumerationConfig {
    /// A small default scope suitable for exhaustive checks in tests.
    pub fn small(n: usize, t: usize, max_value: u64) -> Self {
        EnumerationConfig { n, t, max_value, max_crash_round: 2, partial_delivery: true }
    }

    /// Returns the number of input vectors the scope contains.
    pub fn num_input_vectors(&self) -> u128 {
        (self.max_value as u128 + 1).pow(self.n as u32)
    }

    /// Returns the number of failure patterns the scope contains.
    pub fn num_failure_patterns(&self) -> u128 {
        // Per crashing process: a round and (optionally) a delivery subset of
        // the other n - 1 processes.
        let per_process: u128 = if self.partial_delivery {
            self.max_crash_round as u128 * (1u128 << (self.n - 1))
        } else {
            self.max_crash_round as u128
        };
        // Sum over the number of crashing processes (0..=t) of
        // C(n, crashes) * per_process^crashes.
        (0..=self.t.min(self.n))
            .map(|crashes| binomial(self.n, crashes) * per_process.pow(crashes as u32))
            .sum()
    }

    /// Returns the total number of adversaries the scope contains.
    pub fn num_adversaries(&self) -> u128 {
        self.num_input_vectors() * self.num_failure_patterns()
    }
}

fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
    }
    result
}

/// Number of delivery-subset choices per crash (`2^(n-1)` under partial
/// delivery, `1` when crashes are silent).
fn delivery_choices(config: &EnumerationConfig) -> u128 {
    if config.partial_delivery {
        1u128 << (config.n - 1)
    } else {
        1
    }
}

/// Number of `(round, delivery subset)` choices per crashing process.
fn per_crash_choices(config: &EnumerationConfig) -> u128 {
    config.max_crash_round as u128 * delivery_choices(config)
}

/// Decodes delivery mask `mask` for a crash of `process`: bit `b` selects
/// the `b`-th process other than `process`, in increasing index order — the
/// bit convention shared by both pattern-space enumerations (the omission
/// space reads the same masks as *dropped* receivers).
pub(crate) fn delivered_from_mask(
    n: usize,
    process: usize,
    mask: u128,
) -> impl Iterator<Item = usize> {
    (0..n - 1).filter(move |bit| mask & (1u128 << bit) != 0).map(move |bit| {
        if bit < process {
            bit
        } else {
            bit + 1
        }
    })
}

/// Subtree sizes of the generic recursive fault enumeration with `s`
/// choices per faulty process: `counts[from][budget]` is the number of
/// patterns the recursion emits when it may still pick processes
/// `from … n − 1` with `budget` faults left.  `counts[0][t]` is therefore
/// the total pattern count, and the table (size `O(n · t)`, built in
/// `O(n² · t)`) is all the state lazy unranking needs — for the crash space
/// (`s = max_crash_round · delivery_choices`) and the omission space's
/// per-round digits (`s = 2^(n−1) − 1`) alike.
///
/// Sizes are exact in `u128`; scopes beyond that are far outside anything
/// addressable anyway (`num_failure_patterns` makes the same assumption).
pub(crate) fn subtree_table(n: usize, t: usize, s: u128) -> Vec<Vec<u128>> {
    let mut counts = vec![vec![1u128; t + 1]; n + 1];
    for from in (0..n).rev() {
        for budget in 1..=t {
            let mut total = 1u128;
            for p in from..n {
                total += s * counts[p + 1][budget - 1];
            }
            counts[from][budget] = total;
        }
    }
    counts
}

/// The crash space's subtree table (see [`subtree_table`]).
fn subtree_counts(config: &EnumerationConfig) -> Vec<Vec<u128>> {
    subtree_table(config.n, config.t, per_crash_choices(config))
}

/// Decodes the failure pattern at position `rank` of the preorder emitted by
/// [`extend_patterns`], given that enumeration's subtree-size table.
fn unrank_pattern(
    config: &EnumerationConfig,
    counts: &[Vec<u128>],
    mut rank: u128,
) -> FailurePattern {
    let d = delivery_choices(config);
    let s = per_crash_choices(config);
    let mut pattern = FailurePattern::crash_free(config.n);
    let mut from = 0usize;
    let mut budget = config.t;
    loop {
        debug_assert!(rank < counts[from][budget], "pattern rank outside the subtree");
        if rank == 0 {
            return pattern;
        }
        // Skip the subtree root (the pattern as crashed so far), then walk
        // the per-process blocks: process `p` contributes `s` choices of
        // `(round, delivery mask)`, each heading a subtree rooted at `p + 1`
        // with one less crash in the budget.
        rank -= 1;
        let mut p = from;
        loop {
            debug_assert!(p < config.n, "pattern rank exhausted the process blocks");
            let sub = counts[p + 1][budget - 1];
            let block = s * sub;
            if rank < block {
                let choice = rank / sub;
                rank %= sub;
                let round = (choice / d) as u32 + 1;
                let mask = choice % d;
                pattern
                    .crash(p, round, delivered_from_mask(config.n, p, mask))
                    .expect("unranked crash parameters are always valid");
                from = p + 1;
                budget -= 1;
                break;
            }
            rank -= block;
            p += 1;
        }
    }
}

/// Decodes the failure pattern at position `rank` of the enumeration order
/// of [`failure_patterns`] without materializing the space: `O(n² · t)` for
/// the one-off subtree table, then `O(n · t)` per pattern.  [`AdversarySpace`]
/// keeps the table across calls.
///
/// # Rank/unrank invariant
///
/// Unranking is the exact inverse of the enumeration order: for every
/// `rank < num_failure_patterns()`,
/// `failure_pattern_at(config, rank) == failure_patterns(config)[rank]`,
/// and distinct ranks decode to distinct patterns (the enumeration never
/// repeats a pattern).
///
/// ```
/// use adversary::enumerate::{failure_pattern_at, failure_patterns, EnumerationConfig};
///
/// let config = EnumerationConfig::small(3, 2, 1);
/// let all = failure_patterns(&config);
/// assert_eq!(all.len() as u128, config.num_failure_patterns());
/// for (rank, expected) in all.iter().enumerate() {
///     assert_eq!(&failure_pattern_at(&config, rank as u128), expected);
/// }
/// ```
///
/// # Panics
///
/// Panics if `rank ≥ num_failure_patterns()`.
pub fn failure_pattern_at(config: &EnumerationConfig, rank: u128) -> FailurePattern {
    assert!(
        rank < config.num_failure_patterns(),
        "pattern rank {rank} outside the scope of {config:?}"
    );
    unrank_pattern(config, &subtree_counts(config), rank)
}

/// Enumerates every input vector in the scope.
pub fn input_vectors(config: &EnumerationConfig) -> Vec<InputVector> {
    let total = config.num_input_vectors();
    let mut out = Vec::with_capacity(total as usize);
    for code in 0..total {
        out.push(input_vector_at(config, code));
    }
    out
}

/// Decodes the input vector at position `code` of the enumeration order
/// (mixed-radix, least significant process first) in `O(n)`, without
/// materializing the rest of the space.
///
/// # Rank/unrank invariant
///
/// The code is a mixed-radix numeral in base `max_value + 1` with process 0
/// as the least significant digit: `input_vector_at(config, code)` assigns
/// process `p` the value `(code / base^p) % base`.  Consecutive codes
/// therefore differ by a single increment-with-carry, which is what the
/// [`AdversaryCursor`] exploits to step an input vector in place.
///
/// ```
/// use adversary::enumerate::{input_vector_at, input_vectors, EnumerationConfig};
///
/// let config = EnumerationConfig::small(3, 1, 2);
/// let all = input_vectors(&config);
/// for (code, expected) in all.iter().enumerate() {
///     assert_eq!(&input_vector_at(&config, code as u128), expected);
/// }
/// // Mixed radix, least significant process first: code 5 in base 3 is
/// // (2, 1, 0).
/// assert_eq!(input_vector_at(&config, 5), synchrony::InputVector::from_values([2, 1, 0]));
/// ```
///
/// # Panics
///
/// Panics if `code ≥ num_input_vectors()`.
pub fn input_vector_at(config: &EnumerationConfig, code: u128) -> InputVector {
    assert!(code < config.num_input_vectors(), "input code {code} outside the scope of {config:?}");
    decode_input(config.n, config.max_value, code)
}

/// Enumerates every failure pattern in the scope.
pub fn failure_patterns(config: &EnumerationConfig) -> Vec<FailurePattern> {
    let mut out = Vec::new();
    let mut current = FailurePattern::crash_free(config.n);
    extend_patterns(config, 0, &mut current, &mut out);
    out
}

fn extend_patterns(
    config: &EnumerationConfig,
    from: usize,
    current: &mut FailurePattern,
    out: &mut Vec<FailurePattern>,
) {
    out.push(current.clone());
    if current.num_faulty() >= config.t {
        return;
    }
    // Delivery subsets are iterated as bare bitmasks — materializing all
    // `2^(n-1)` subsets as `Vec<Vec<usize>>` per recursion step (as an
    // earlier version did) dominated the allocation profile of every
    // enumeration under `partial_delivery`.
    for process in from..config.n {
        for round in 1..=config.max_crash_round {
            for mask in 0..delivery_choices(config) {
                let mut next = current.clone();
                next.crash(process, round, delivered_from_mask(config.n, process, mask))
                    .expect("enumerated crash parameters are always valid");
                extend_patterns(config, process + 1, &mut next, out);
            }
        }
    }
}

/// Enumerates every adversary in the scope.
///
/// # Errors
///
/// Returns an error only if the configuration itself is degenerate (fewer
/// than two processes).
pub fn adversaries(config: &EnumerationConfig) -> Result<Vec<Adversary>, ModelError> {
    if config.n < 2 {
        return Err(ModelError::TooFewProcesses { n: config.n });
    }
    let inputs = input_vectors(config);
    let patterns = failure_patterns(config);
    let mut out = Vec::with_capacity(inputs.len() * patterns.len());
    for pattern in &patterns {
        for input in &inputs {
            out.push(Adversary::new(input.clone(), pattern.clone())?);
        }
    }
    Ok(out)
}

/// The crash-fault [`PatternSpace`]: the paper's `t`-crash model, with
/// patterns unranked on demand against the subtree-count table of the
/// recursive enumeration behind [`failure_patterns`].
#[derive(Debug, Clone)]
pub struct CrashSpace {
    config: EnumerationConfig,
    /// Subtree sizes of the recursive pattern enumeration (see
    /// `subtree_counts`) — the only per-scope state unranking needs.
    subtree: Vec<Vec<u128>>,
    num_patterns: u128,
}

impl CrashSpace {
    /// Prepares the lazy pattern unranker for the scope, in `O(n² · t)` time
    /// and `O(n · t)` memory regardless of the scope's size.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is degenerate (fewer than two
    /// processes).
    pub fn new(config: EnumerationConfig) -> Result<Self, ModelError> {
        if config.n < 2 {
            return Err(ModelError::TooFewProcesses { n: config.n });
        }
        let subtree = subtree_counts(&config);
        let num_patterns = subtree[0][config.t];
        debug_assert_eq!(num_patterns, config.num_failure_patterns());
        Ok(CrashSpace { config, subtree, num_patterns })
    }

    /// Returns the enumeration scope.
    pub fn config(&self) -> &EnumerationConfig {
        &self.config
    }
}

impl PatternSpace for CrashSpace {
    fn model(&self) -> PatternModel {
        PatternModel::Crash
    }

    fn n(&self) -> usize {
        self.config.n
    }

    fn max_value(&self) -> u64 {
        self.config.max_value
    }

    fn num_patterns(&self) -> u128 {
        self.num_patterns
    }

    fn pattern_at(&self, rank: u128) -> FailurePattern {
        assert!(
            rank < self.num_patterns,
            "pattern rank {rank} outside the scope of {:?}",
            self.config
        );
        unrank_pattern(&self.config, &self.subtree, rank)
    }
}

/// A randomly-addressable view of an enumeration scope, built for sharded
/// sweeps (see the `sweep` crate): a [`PatternSpace`] crossed with the
/// mixed-radix input-vector enumeration.
///
/// Nothing is materialized: input vectors are decoded from their mixed-radix
/// code and failure patterns are **unranked** on demand against the space's
/// `O(n · t)` table of subtree sizes ([`CrashSpace`] for the paper's crash
/// model, [`OmissionSpace`] for mobile send omissions — the crossing,
/// blocking and cursor machinery below is model-agnostic).
/// [`AdversarySpace::nth`] therefore runs in `O(n · t)` per adversary with
/// peak memory independent of the scope size, which is what lets shards of a
/// sweep seek to their slice of scopes whose pattern space alone would never
/// fit in memory (`n ≳ 6` under partial delivery).
///
/// The ordering is identical to [`adversaries`]: the adversary at index `i`
/// combines failure pattern `i / num_input_vectors()` (in the pattern
/// space's rank order) with input code `i % num_input_vectors()`.
///
/// ```
/// use adversary::enumerate::{adversaries, AdversarySpace, EnumerationConfig};
///
/// let config = EnumerationConfig::small(3, 1, 1);
/// let space = AdversarySpace::new(config).unwrap();
/// let all = adversaries(&config).unwrap();
/// assert_eq!(space.len(), all.len() as u128);
/// assert_eq!(space.nth(17), all[17]);
/// ```
#[derive(Debug, Clone)]
pub struct AdversarySpace {
    space: Arc<dyn PatternSpace>,
    num_patterns: u128,
    num_inputs: u128,
}

impl AdversarySpace {
    /// Builds the crash-model space of the scope: prepares the lazy pattern
    /// unranker and input-vector decoder, in `O(n² · t)` time and `O(n · t)`
    /// memory regardless of the scope's size.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is degenerate (fewer than two
    /// processes).
    pub fn new(config: EnumerationConfig) -> Result<Self, ModelError> {
        Ok(Self::from_pattern_space(Arc::new(CrashSpace::new(config)?)))
    }

    /// Builds the send-omission space of the scope (see
    /// [`OmissionSpace`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is degenerate (fewer than two
    /// processes).
    pub fn omission(config: OmissionConfig) -> Result<Self, ModelError> {
        Ok(Self::from_pattern_space(Arc::new(OmissionSpace::new(config)?)))
    }

    /// Crosses an arbitrary conforming [`PatternSpace`] with the input
    /// enumeration of its scope.
    pub fn from_pattern_space(space: Arc<dyn PatternSpace>) -> Self {
        let num_patterns = space.num_patterns();
        let num_inputs = (space.max_value() as u128 + 1).pow(space.n() as u32);
        AdversarySpace { space, num_patterns, num_inputs }
    }

    /// Returns the fault-model discriminant of the underlying pattern space.
    pub fn model(&self) -> PatternModel {
        self.space.model()
    }

    /// Returns the number of processes of the scope.
    pub fn n(&self) -> usize {
        self.space.n()
    }

    /// Returns the largest initial value of the scope's input domain.
    pub fn max_value(&self) -> u64 {
        self.space.max_value()
    }

    /// Decodes the failure pattern at position `rank` of the pattern space's
    /// rank order.
    ///
    /// # Panics
    ///
    /// Panics if `rank ≥ num_patterns()`.
    pub fn pattern_at(&self, rank: u128) -> FailurePattern {
        self.space.pattern_at(rank)
    }

    /// Returns the total number of adversaries in the space.
    pub fn len(&self) -> u128 {
        self.num_patterns * self.num_inputs
    }

    /// Returns the number of input vectors crossed with each failure
    /// pattern — the length of a *structure-major block*: adversaries
    /// `p · inputs_per_pattern() .. (p + 1) · inputs_per_pattern()` all
    /// share failure pattern `p` and therefore induce one communication
    /// structure.  The sweep engine aligns shard boundaries to this block
    /// so run-structure reuse survives any sharding.
    pub fn inputs_per_pattern(&self) -> u128 {
        self.num_inputs
    }

    /// Returns the number of failure patterns in the space.
    pub fn num_patterns(&self) -> u128 {
        self.num_patterns
    }

    /// Returns `true` if the space contains no adversary (never the case for
    /// a valid configuration, which always contains the crash-free pattern).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the adversary at position `index` of the enumeration order.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ len()`.
    pub fn nth(&self, index: u128) -> Adversary {
        assert!(index < self.len(), "adversary index {index} outside the space");
        let pattern = self.space.pattern_at(index / self.num_inputs);
        let input = decode_input(self.space.n(), self.space.max_value(), index % self.num_inputs);
        Adversary::new(input, pattern).expect("enumerated adversaries are always well formed")
    }

    /// Iterates over the adversaries of the half-open index range
    /// `start..end` — the shard access pattern of the sweep engine.
    pub fn iter_range(&self, start: u128, end: u128) -> impl Iterator<Item = Adversary> + '_ {
        (start..end.min(self.len())).map(move |index| self.nth(index))
    }

    /// Returns a block cursor over the half-open index range `start..end`
    /// (clamped to the space) — the allocation-free replacement for calling
    /// [`AdversarySpace::nth`] per index.  See [`AdversaryCursor`].
    pub fn cursor(&self, start: u128, end: u128) -> AdversaryCursor<'_> {
        AdversaryCursor {
            space: self,
            next: start,
            end: end.min(self.len()),
            digits: vec![0; self.space.n()],
            primed: false,
            counters: CursorCounters::default(),
        }
    }
}

/// Decodes the input vector at mixed-radix `code` over `n` processes with
/// values in `{0, …, max_value}` — the model-independent half of
/// [`AdversarySpace::nth`].
fn decode_input(n: usize, max_value: u64, code: u128) -> InputVector {
    let base = max_value as u128 + 1;
    let mut values = Vec::with_capacity(n);
    let mut rest = code;
    for _ in 0..n {
        values.push((rest % base) as u64);
        rest /= base;
    }
    InputVector::from_values(values)
}

/// Production counters of an [`AdversaryCursor`] — how each adversary of the
/// range was obtained.
///
/// In steady state a cursor *steps*: zero pattern or input-vector
/// allocations per adversary.  `materialized` stays at one per cursor (the
/// first advance) and `patterns_unranked` at one per structure block
/// touched, so `materialized / (materialized + stepped) → 0` as the range
/// grows — the property the `bench_block_cursor` snapshot asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CursorCounters {
    /// Adversaries produced by a full materialization (an [`AdversarySpace::nth`]
    /// call replacing the scratch wholesale) — exactly one per cursor that
    /// yielded anything.
    pub materialized: u64,
    /// Adversaries produced by stepping the previous one in place —
    /// allocation-free except at block boundaries, where a fresh failure
    /// pattern is unranked into the scratch.
    pub stepped: u64,
    /// Failure patterns unranked — once per structure block the range
    /// touches (including the block the first advance lands in).
    pub patterns_unranked: u64,
}

impl CursorCounters {
    /// Returns the total number of adversaries produced.
    pub fn total(&self) -> u64 {
        self.materialized + self.stepped
    }

    /// Returns the fraction of adversaries produced without a fresh
    /// materialization, in `[0, 1]` (`0` when nothing was produced).
    pub fn in_place_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.stepped as f64 / self.total() as f64
        }
    }

    /// Adds another cursor's counters into this one.
    pub fn merge(&mut self, other: CursorCounters) {
        self.materialized += other.materialized;
        self.stepped += other.stepped;
        self.patterns_unranked += other.patterns_unranked;
    }
}

/// A *block cursor* over a contiguous range of an [`AdversarySpace`]: the
/// allocation-free way to walk the enumeration.
///
/// [`AdversarySpace::nth`] builds a fresh [`FailurePattern`], [`InputVector`]
/// and [`Adversary`] per index; swept exhaustively, those allocations are
/// pure per-scenario overhead because the enumeration is pattern-major —
/// `inputs_per_pattern()` consecutive indices share one failure pattern and
/// their input vectors differ by a single mixed-radix increment.  The cursor
/// exploits exactly that: it unranks the failure pattern **once per block**,
/// steps the input code **in place** inside a caller-owned scratch
/// [`Adversary`], and only falls back to a full `nth` materialization on its
/// very first advance (which also makes any pre-existing scratch contents
/// irrelevant).
///
/// The yielded sequence is bit-identical to `nth(start), …, nth(end - 1)` —
/// pinned by the cursor/`nth` equivalence property test — for **every**
/// range, including ranges that start mid-block or straddle block
/// boundaries.
///
/// ```
/// use adversary::enumerate::{AdversarySpace, EnumerationConfig};
/// use synchrony::{Adversary, InputVector};
///
/// let space = AdversarySpace::new(EnumerationConfig::small(3, 1, 1)).unwrap();
/// let mut cursor = space.cursor(5, 25);
/// // Any well-formed adversary works as scratch: the first advance
/// // replaces it wholesale.
/// let mut scratch = Adversary::failure_free(InputVector::uniform(3, 0)).unwrap();
/// let mut index = 5u128;
/// while cursor.advance(&mut scratch) {
///     assert_eq!(scratch, space.nth(index));
///     index += 1;
/// }
/// assert_eq!(index, 25);
/// // Steady state: everything after the first advance was stepped in place.
/// assert_eq!(cursor.counters().materialized, 1);
/// assert_eq!(cursor.counters().stepped, 19);
/// ```
#[derive(Debug)]
pub struct AdversaryCursor<'a> {
    space: &'a AdversarySpace,
    /// Index of the next adversary to yield.
    next: u128,
    end: u128,
    /// Little-endian mixed-radix digits of the input code last written into
    /// the scratch (meaningful once `primed`).
    digits: Vec<u64>,
    /// Whether the scratch currently holds the adversary at `next - 1` (set
    /// by the first advance, which overwrites the scratch wholesale).
    primed: bool,
    counters: CursorCounters,
}

impl AdversaryCursor<'_> {
    /// Returns the index of the next adversary the cursor will yield.
    pub fn position(&self) -> u128 {
        self.next
    }

    /// Advances the cursor, writing the next adversary of the range into
    /// `scratch`; returns `false` (leaving `scratch` untouched) once the
    /// range is exhausted.
    ///
    /// The first successful advance replaces `*scratch` wholesale, so its
    /// prior contents may be anything; every later advance mutates it in
    /// place and relies on it being unmodified since the previous advance.
    pub fn advance(&mut self, scratch: &mut Adversary) -> bool {
        if self.next >= self.end {
            return false;
        }
        let code = self.next % self.space.num_inputs;
        if !self.primed {
            *scratch = self.space.nth(self.next);
            let base = self.space.max_value() as u128 + 1;
            let mut rest = code;
            for digit in &mut self.digits {
                *digit = (rest % base) as u64;
                rest /= base;
            }
            self.primed = true;
            self.counters.materialized += 1;
            self.counters.patterns_unranked += 1;
        } else if code == 0 {
            // Block boundary: a fresh failure pattern, input code back to 0.
            let pattern = self.space.pattern_at(self.next / self.space.num_inputs);
            scratch
                .set_failures(pattern)
                .expect("cursor patterns range over the scratch's processes");
            for (process, digit) in self.digits.iter_mut().enumerate() {
                if *digit != 0 {
                    *digit = 0;
                    scratch.set_input(process, 0u64);
                }
            }
            self.counters.stepped += 1;
            self.counters.patterns_unranked += 1;
        } else {
            // Mixed-radix increment with carry; the carry cannot run off the
            // end because `code != 0` means the previous code was not the
            // block's last.
            let base = self.space.max_value() + 1;
            let mut process = 0usize;
            loop {
                self.digits[process] += 1;
                if self.digits[process] < base {
                    scratch.set_input(process, self.digits[process]);
                    break;
                }
                self.digits[process] = 0;
                scratch.set_input(process, 0u64);
                process += 1;
            }
            self.counters.stepped += 1;
        }
        self.next += 1;
        true
    }

    /// Returns the production counters accumulated so far.
    pub fn counters(&self) -> CursorCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_matches_the_materialized_enumeration() {
        let config = EnumerationConfig {
            n: 3,
            t: 1,
            max_value: 1,
            max_crash_round: 2,
            partial_delivery: true,
        };
        let space = AdversarySpace::new(config).unwrap();
        let all = adversaries(&config).unwrap();
        assert_eq!(space.len(), all.len() as u128);
        assert!(!space.is_empty());
        for (i, expected) in all.iter().enumerate() {
            assert_eq!(&space.nth(i as u128), expected, "divergence at index {i}");
        }
        let tail: Vec<Adversary> = space.iter_range(5, 9).collect();
        assert_eq!(tail.as_slice(), &all[5..9]);
        // Ranges saturate at the end of the space.
        assert_eq!(space.iter_range(space.len() - 2, space.len() + 10).count(), 2);
    }

    /// Seeded-loop property test for the satellite acceptance: across a
    /// batch of small scopes — crucially including `partial_delivery` ones —
    /// lazy unranking agrees with the materialized enumeration at *every*
    /// index.
    #[test]
    fn lazy_unranking_matches_materialization_on_every_scope() {
        let scopes = [
            EnumerationConfig {
                n: 3,
                t: 1,
                max_value: 1,
                max_crash_round: 2,
                partial_delivery: true,
            },
            EnumerationConfig {
                n: 3,
                t: 2,
                max_value: 1,
                max_crash_round: 2,
                partial_delivery: true,
            },
            EnumerationConfig {
                n: 4,
                t: 2,
                max_value: 0,
                max_crash_round: 1,
                partial_delivery: true,
            },
            EnumerationConfig {
                n: 4,
                t: 3,
                max_value: 0,
                max_crash_round: 2,
                partial_delivery: false,
            },
            EnumerationConfig {
                n: 5,
                t: 2,
                max_value: 0,
                max_crash_round: 2,
                partial_delivery: false,
            },
            EnumerationConfig {
                n: 2,
                t: 0,
                max_value: 2,
                max_crash_round: 1,
                partial_delivery: true,
            },
            // A failure budget beyond n − 1, exercising the budget clamp.
            EnumerationConfig {
                n: 3,
                t: 5,
                max_value: 0,
                max_crash_round: 1,
                partial_delivery: true,
            },
        ];
        for config in scopes {
            let patterns = failure_patterns(&config);
            assert_eq!(patterns.len() as u128, config.num_failure_patterns(), "{config:?}");
            for (rank, expected) in patterns.iter().enumerate() {
                assert_eq!(
                    &failure_pattern_at(&config, rank as u128),
                    expected,
                    "pattern divergence at rank {rank} of {config:?}"
                );
            }
            let space = AdversarySpace::new(config).unwrap();
            let all = adversaries(&config).unwrap();
            assert_eq!(space.len(), all.len() as u128, "{config:?}");
            for (index, expected) in all.iter().enumerate() {
                assert_eq!(
                    &space.nth(index as u128),
                    expected,
                    "adversary divergence at index {index} of {config:?}"
                );
            }
        }
    }

    /// `AdversarySpace::new` must not materialize the pattern space: this
    /// scope holds ~10^12 failure patterns, which would exhaust memory
    /// instantly if the old `Vec<FailurePattern>` were still built, yet the
    /// lazy cursor addresses both ends of it.
    #[test]
    fn space_construction_is_independent_of_scope_size() {
        let config = EnumerationConfig {
            n: 8,
            t: 4,
            max_value: 1,
            max_crash_round: 3,
            partial_delivery: true,
        };
        assert!(config.num_failure_patterns() > 1u128 << 36);
        let space = AdversarySpace::new(config).unwrap();
        assert_eq!(space.len(), config.num_adversaries());
        // The first adversary is the crash-free one over the all-zero input.
        let first = space.nth(0);
        assert_eq!(first.num_failures(), 0);
        // The last pattern in preorder is the lone crash of the final
        // process with the largest round/delivery choice (its subtree is a
        // leaf — no process after it can extend the pattern).
        let last = space.nth(space.len() - 1);
        assert_eq!(last.num_failures(), 1);
        assert_eq!(
            last.failures().crash_round(config.n - 1).map(|r| r.number()),
            Some(config.max_crash_round)
        );
        assert!(last.inputs().check_max_value(1).is_ok());
        // Spot-check agreement with a sequential replay at a shard boundary
        // deep inside the space (patterns only, inputs are closed-form).
        let rank = space.len() / 3 / config.num_input_vectors();
        let direct = failure_pattern_at(&config, rank);
        assert!(direct.num_faulty() <= 4);
    }

    #[test]
    fn space_rejects_degenerate_scopes() {
        assert!(AdversarySpace::new(EnumerationConfig::small(1, 0, 1)).is_err());
    }

    /// Seeded-loop property test (satellite acceptance): over a batch of
    /// scopes and random half-open ranges — including ranges that start
    /// mid-block, end mid-block, straddle several block boundaries, are
    /// empty, or run past the end of the space — the block cursor yields
    /// exactly the `(FailurePattern, InputVector)` sequence of repeated
    /// `nth` calls, and its counters account for every adversary produced.
    #[test]
    fn cursor_matches_nth_on_random_ranges() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        let scopes = [
            EnumerationConfig::small(3, 1, 1),
            EnumerationConfig::small(3, 2, 2),
            EnumerationConfig {
                n: 4,
                t: 2,
                max_value: 1,
                max_crash_round: 2,
                partial_delivery: false,
            },
            EnumerationConfig {
                n: 2,
                t: 0,
                max_value: 3,
                max_crash_round: 1,
                partial_delivery: true,
            },
        ];
        let mut rng = StdRng::seed_from_u64(0xB10C);
        for config in scopes {
            let space = AdversarySpace::new(config).unwrap();
            let len = space.len();
            let block = space.inputs_per_pattern();
            for trial in 0..40u32 {
                let (start, end) = match trial {
                    // Directed cases: full space, one exact block, an empty
                    // range, and a range clamped past the end.
                    0 => (0, len),
                    1 => (block, 2 * block.min(len / 2).max(1)),
                    2 => (len / 2, len / 2),
                    3 => (len.saturating_sub(3), len + 100),
                    // Random ranges, biased to straddle block boundaries.
                    _ => {
                        let a = rng.random_range(0..len as u64) as u128;
                        let span = rng.random_range(0..(3 * block).min(len) as u64) as u128;
                        (a, (a + span).min(len))
                    }
                };
                let mut cursor = space.cursor(start, end);
                let mut scratch =
                    Adversary::failure_free(InputVector::uniform(config.n, 0)).unwrap();
                let mut index = start;
                while cursor.advance(&mut scratch) {
                    let expected = space.nth(index);
                    assert_eq!(
                        scratch.failures(),
                        expected.failures(),
                        "pattern divergence at {index} of {start}..{end} in {config:?}"
                    );
                    assert_eq!(
                        scratch.inputs(),
                        expected.inputs(),
                        "input divergence at {index} of {start}..{end} in {config:?}"
                    );
                    index += 1;
                }
                assert_eq!(index, end.min(len), "cursor stopped early on {start}..{end}");
                let counters = cursor.counters();
                assert_eq!(counters.total() as u128, end.min(len).saturating_sub(start));
                assert_eq!(counters.materialized, u64::from(end.min(len) > start));
                // One unranking per structure block the range touches.
                let produced = end.min(len).saturating_sub(start);
                let blocks_touched =
                    if produced == 0 { 0 } else { (end.min(len) - 1) / block - start / block + 1 };
                assert_eq!(counters.patterns_unranked as u128, blocks_touched);
            }
        }
    }

    #[test]
    fn counts_match_the_enumeration() {
        let config = EnumerationConfig {
            n: 3,
            t: 1,
            max_value: 1,
            max_crash_round: 2,
            partial_delivery: true,
        };
        assert_eq!(input_vectors(&config).len() as u128, config.num_input_vectors());
        assert_eq!(failure_patterns(&config).len() as u128, config.num_failure_patterns());
        let all = adversaries(&config).unwrap();
        assert_eq!(all.len() as u128, config.num_adversaries());
    }

    #[test]
    fn silent_only_enumeration_is_much_smaller() {
        let with = EnumerationConfig {
            n: 3,
            t: 2,
            max_value: 1,
            max_crash_round: 2,
            partial_delivery: true,
        };
        let without = EnumerationConfig { partial_delivery: false, ..with };
        assert!(without.num_failure_patterns() < with.num_failure_patterns());
        assert_eq!(failure_patterns(&without).len() as u128, without.num_failure_patterns());
    }

    #[test]
    fn every_enumerated_adversary_respects_the_budget() {
        let config = EnumerationConfig::small(3, 2, 1);
        for adversary in adversaries(&config).unwrap() {
            assert!(adversary.num_failures() <= 2);
            assert_eq!(adversary.n(), 3);
            assert!(adversary.inputs().check_max_value(1).is_ok());
        }
    }

    #[test]
    fn patterns_are_pairwise_distinct() {
        let config = EnumerationConfig {
            n: 3,
            t: 1,
            max_value: 0,
            max_crash_round: 1,
            partial_delivery: true,
        };
        let patterns = failure_patterns(&config);
        for (i, a) in patterns.iter().enumerate() {
            for b in patterns.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn degenerate_configurations_are_rejected() {
        let config = EnumerationConfig::small(1, 0, 1);
        assert!(adversaries(&config).is_err());
    }

    #[test]
    fn binomial_coefficients_are_correct() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(3, 4), 0);
    }
}
