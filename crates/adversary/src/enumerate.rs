//! Exhaustive enumeration of adversaries for small systems.
//!
//! Unbeatability is a statement about *all* runs; for small systems the space
//! of adversaries is finite and can be enumerated outright, which is how the
//! experiment harness spot-checks the paper's optimality claims (experiment
//! E7 in `DESIGN.md`).  The enumeration covers every input vector over
//! `{0, …, max_value}` and every failure pattern with at most `t` crashes in
//! rounds `1 … max_crash_round`, with every possible delivery subset in the
//! crashing round.

use serde::{Deserialize, Serialize};

use synchrony::{Adversary, FailurePattern, InputVector, ModelError};

/// The scope of an exhaustive enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnumerationConfig {
    /// Number of processes.
    pub n: usize,
    /// Maximum number of crashes per adversary.
    pub t: usize,
    /// Largest initial value (the domain is `{0, …, max_value}`).
    pub max_value: u64,
    /// Latest round in which a crash may occur.
    pub max_crash_round: u32,
    /// Whether crashing processes may deliver to arbitrary subsets (`true`) or
    /// only crash silently (`false`), which shrinks the space considerably.
    pub partial_delivery: bool,
}

impl EnumerationConfig {
    /// A small default scope suitable for exhaustive checks in tests.
    pub fn small(n: usize, t: usize, max_value: u64) -> Self {
        EnumerationConfig { n, t, max_value, max_crash_round: 2, partial_delivery: true }
    }

    /// Returns the number of input vectors the scope contains.
    pub fn num_input_vectors(&self) -> u128 {
        (self.max_value as u128 + 1).pow(self.n as u32)
    }

    /// Returns the number of failure patterns the scope contains.
    pub fn num_failure_patterns(&self) -> u128 {
        // Per crashing process: a round and (optionally) a delivery subset of
        // the other n - 1 processes.
        let per_process: u128 = if self.partial_delivery {
            self.max_crash_round as u128 * (1u128 << (self.n - 1))
        } else {
            self.max_crash_round as u128
        };
        // Sum over the number of crashing processes (0..=t) of
        // C(n, crashes) * per_process^crashes.
        (0..=self.t.min(self.n))
            .map(|crashes| binomial(self.n, crashes) * per_process.pow(crashes as u32))
            .sum()
    }

    /// Returns the total number of adversaries the scope contains.
    pub fn num_adversaries(&self) -> u128 {
        self.num_input_vectors() * self.num_failure_patterns()
    }
}

fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let mut result: u128 = 1;
    for i in 0..k {
        result = result * (n - i) as u128 / (i + 1) as u128;
    }
    result
}

/// Enumerates every input vector in the scope.
pub fn input_vectors(config: &EnumerationConfig) -> Vec<InputVector> {
    let total = config.num_input_vectors();
    let mut out = Vec::with_capacity(total as usize);
    for code in 0..total {
        out.push(input_vector_at(config, code));
    }
    out
}

/// Decodes the input vector at position `code` of the enumeration order
/// (mixed-radix, least significant process first) in `O(n)`, without
/// materializing the rest of the space.
///
/// # Panics
///
/// Panics if `code ≥ num_input_vectors()`.
pub fn input_vector_at(config: &EnumerationConfig, code: u128) -> InputVector {
    assert!(code < config.num_input_vectors(), "input code {code} outside the scope of {config:?}");
    let base = config.max_value as u128 + 1;
    let mut values = Vec::with_capacity(config.n);
    let mut rest = code;
    for _ in 0..config.n {
        values.push((rest % base) as u64);
        rest /= base;
    }
    InputVector::from_values(values)
}

/// Enumerates every failure pattern in the scope.
pub fn failure_patterns(config: &EnumerationConfig) -> Vec<FailurePattern> {
    let mut out = Vec::new();
    let mut current = FailurePattern::crash_free(config.n);
    extend_patterns(config, 0, &mut current, &mut out);
    out
}

fn extend_patterns(
    config: &EnumerationConfig,
    from: usize,
    current: &mut FailurePattern,
    out: &mut Vec<FailurePattern>,
) {
    out.push(current.clone());
    if current.num_faulty() >= config.t {
        return;
    }
    for process in from..config.n {
        for round in 1..=config.max_crash_round {
            let subsets: Vec<Vec<usize>> = if config.partial_delivery {
                let others: Vec<usize> = (0..config.n).filter(|&p| p != process).collect();
                (0..(1u32 << others.len()))
                    .map(|mask| {
                        others
                            .iter()
                            .enumerate()
                            .filter(|(bit, _)| mask & (1 << bit) != 0)
                            .map(|(_, &p)| p)
                            .collect()
                    })
                    .collect()
            } else {
                vec![Vec::new()]
            };
            for delivered in subsets {
                let mut next = current.clone();
                next.crash(process, round, delivered)
                    .expect("enumerated crash parameters are always valid");
                extend_patterns(config, process + 1, &mut next, out);
            }
        }
    }
}

/// Enumerates every adversary in the scope.
///
/// # Errors
///
/// Returns an error only if the configuration itself is degenerate (fewer
/// than two processes).
pub fn adversaries(config: &EnumerationConfig) -> Result<Vec<Adversary>, ModelError> {
    if config.n < 2 {
        return Err(ModelError::TooFewProcesses { n: config.n });
    }
    let inputs = input_vectors(config);
    let patterns = failure_patterns(config);
    let mut out = Vec::with_capacity(inputs.len() * patterns.len());
    for pattern in &patterns {
        for input in &inputs {
            out.push(Adversary::new(input.clone(), pattern.clone())?);
        }
    }
    Ok(out)
}

/// A randomly-addressable view of an enumeration scope, built for sharded
/// sweeps (see the `sweep` crate).
///
/// The recursive failure-pattern enumeration does not support random access,
/// so the patterns are materialized once and shared; input vectors are
/// decoded directly from their mixed-radix code.  [`AdversarySpace::nth`]
/// therefore runs in `O(n)` per adversary without materializing the full
/// `patterns × inputs` cross product, which is what lets shards of a sweep
/// seek to their slice of the space in constant time.
///
/// The ordering is identical to [`adversaries`]: the adversary at index `i`
/// combines failure pattern `i / num_input_vectors()` with input code
/// `i % num_input_vectors()`.
///
/// ```
/// use adversary::enumerate::{adversaries, AdversarySpace, EnumerationConfig};
///
/// let config = EnumerationConfig::small(3, 1, 1);
/// let space = AdversarySpace::new(config).unwrap();
/// let all = adversaries(&config).unwrap();
/// assert_eq!(space.len(), all.len() as u128);
/// assert_eq!(space.nth(17), all[17]);
/// ```
#[derive(Debug, Clone)]
pub struct AdversarySpace {
    config: EnumerationConfig,
    patterns: Vec<FailurePattern>,
    num_inputs: u128,
}

impl AdversarySpace {
    /// Materializes the failure patterns of the scope and prepares the
    /// input-vector decoder.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is degenerate (fewer than two
    /// processes).
    pub fn new(config: EnumerationConfig) -> Result<Self, ModelError> {
        if config.n < 2 {
            return Err(ModelError::TooFewProcesses { n: config.n });
        }
        let patterns = failure_patterns(&config);
        Ok(AdversarySpace { num_inputs: config.num_input_vectors(), config, patterns })
    }

    /// Returns the enumeration scope.
    pub fn config(&self) -> &EnumerationConfig {
        &self.config
    }

    /// Returns the total number of adversaries in the space.
    pub fn len(&self) -> u128 {
        self.patterns.len() as u128 * self.num_inputs
    }

    /// Returns `true` if the space contains no adversary (never the case for
    /// a valid configuration, which always contains the crash-free pattern).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the adversary at position `index` of the enumeration order.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ len()`.
    pub fn nth(&self, index: u128) -> Adversary {
        assert!(index < self.len(), "adversary index {index} outside the space");
        let pattern = &self.patterns[(index / self.num_inputs) as usize];
        let input = input_vector_at(&self.config, index % self.num_inputs);
        Adversary::new(input, pattern.clone())
            .expect("enumerated adversaries are always well formed")
    }

    /// Iterates over the adversaries of the half-open index range
    /// `start..end` — the shard access pattern of the sweep engine.
    pub fn iter_range(&self, start: u128, end: u128) -> impl Iterator<Item = Adversary> + '_ {
        (start..end.min(self.len())).map(move |index| self.nth(index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_matches_the_materialized_enumeration() {
        let config = EnumerationConfig {
            n: 3,
            t: 1,
            max_value: 1,
            max_crash_round: 2,
            partial_delivery: true,
        };
        let space = AdversarySpace::new(config).unwrap();
        let all = adversaries(&config).unwrap();
        assert_eq!(space.len(), all.len() as u128);
        assert!(!space.is_empty());
        for (i, expected) in all.iter().enumerate() {
            assert_eq!(&space.nth(i as u128), expected, "divergence at index {i}");
        }
        let tail: Vec<Adversary> = space.iter_range(5, 9).collect();
        assert_eq!(tail.as_slice(), &all[5..9]);
        // Ranges saturate at the end of the space.
        assert_eq!(space.iter_range(space.len() - 2, space.len() + 10).count(), 2);
    }

    #[test]
    fn space_rejects_degenerate_scopes() {
        assert!(AdversarySpace::new(EnumerationConfig::small(1, 0, 1)).is_err());
    }

    #[test]
    fn counts_match_the_enumeration() {
        let config = EnumerationConfig {
            n: 3,
            t: 1,
            max_value: 1,
            max_crash_round: 2,
            partial_delivery: true,
        };
        assert_eq!(input_vectors(&config).len() as u128, config.num_input_vectors());
        assert_eq!(failure_patterns(&config).len() as u128, config.num_failure_patterns());
        let all = adversaries(&config).unwrap();
        assert_eq!(all.len() as u128, config.num_adversaries());
    }

    #[test]
    fn silent_only_enumeration_is_much_smaller() {
        let with = EnumerationConfig {
            n: 3,
            t: 2,
            max_value: 1,
            max_crash_round: 2,
            partial_delivery: true,
        };
        let without = EnumerationConfig { partial_delivery: false, ..with };
        assert!(without.num_failure_patterns() < with.num_failure_patterns());
        assert_eq!(failure_patterns(&without).len() as u128, without.num_failure_patterns());
    }

    #[test]
    fn every_enumerated_adversary_respects_the_budget() {
        let config = EnumerationConfig::small(3, 2, 1);
        for adversary in adversaries(&config).unwrap() {
            assert!(adversary.num_failures() <= 2);
            assert_eq!(adversary.n(), 3);
            assert!(adversary.inputs().check_max_value(1).is_ok());
        }
    }

    #[test]
    fn patterns_are_pairwise_distinct() {
        let config = EnumerationConfig {
            n: 3,
            t: 1,
            max_value: 0,
            max_crash_round: 1,
            partial_delivery: true,
        };
        let patterns = failure_patterns(&config);
        for (i, a) in patterns.iter().enumerate() {
            for b in patterns.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn degenerate_configurations_are_rejected() {
        let config = EnumerationConfig::small(1, 0, 1);
        assert!(adversaries(&config).is_err());
    }

    #[test]
    fn binomial_coefficients_are_correct() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(3, 4), 0);
    }
}
