//! Adversary families taken from the paper's figures.
//!
//! * [`hidden_path`] — the Fig. 1 scenario: a single chain of crashing
//!   processes carries a value the observer never sees, keeping a hidden path
//!   alive.
//! * [`hidden_capacity_chains`] — the Fig. 2 scenario: `k` disjoint crash
//!   chains keep the observer's hidden capacity at `k` for `depth` rounds.
//! * [`uniform_gap`] — a Fig. 4-style family: every correct process discovers
//!   at least `k` new failures in every round (so every failure-counting
//!   protocol from the literature stays undecided until `⌊t/k⌋ + 1`), yet the
//!   hidden capacity of every correct process collapses at time 2, letting
//!   `u-Pmin[k]` (and `Optmin[k]`) decide at time 2.

use serde::{Deserialize, Serialize};

use synchrony::{Adversary, FailurePattern, InputVector, ModelError, PidSet, ProcessId};

/// The Fig. 1 scenario: process 0 holds the value 0 and crashes in round 1
/// reaching only process 1; process `j` (for `1 ≤ j < chain_len`) crashes in
/// round `j + 1` reaching only process `j + 1`.  All other processes hold the
/// value 1 and never crash.
///
/// With respect to any untouched observer at time `chain_len`, a hidden path
/// exists: at every time `ℓ ≤ chain_len` the node `⟨ℓ, ℓ⟩` is hidden.
///
/// # Errors
///
/// Returns an error if the system is too small to host the chain plus at
/// least two untouched processes.
pub fn hidden_path(n: usize, chain_len: usize) -> Result<Adversary, ModelError> {
    if n < chain_len + 2 {
        return Err(ModelError::InvalidTaskParameter {
            reason: format!(
                "a hidden path of length {chain_len} needs at least {} processes, got {n}",
                chain_len + 2
            ),
        });
    }
    let mut inputs = vec![1u64; n];
    inputs[0] = 0;
    let mut failures = FailurePattern::crash_free(n);
    for j in 0..chain_len {
        failures.crash(j, (j + 1) as u32, [j + 1])?;
    }
    Adversary::new(InputVector::from_values(inputs), failures)
}

/// A Fig. 2 scenario with its distinguished observer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HiddenCapacityScenario {
    /// The adversary realizing the scenario.
    pub adversary: Adversary,
    /// The observer process whose hidden capacity stays at `k`.
    pub observer: ProcessId,
    /// The agreement degree the scenario was built for.
    pub k: usize,
    /// The number of rounds for which the hidden capacity is maintained.
    pub depth: usize,
}

/// The Fig. 2 scenario: `k` disjoint crash chains of length `depth` keep the
/// observer's hidden capacity at `k` through time `depth`.
///
/// Chain `b` (for `0 ≤ b < k`) consists of processes `b, k + b, 2k + b, …`;
/// the layer-`ℓ` member crashes in round `ℓ + 1` delivering only to the
/// layer-`(ℓ+1)` member.  The layer-0 member of chain `b` holds the low value
/// `b`; every process outside the chains holds the high value `k`.  The
/// observer is the last process.
///
/// # Errors
///
/// Returns an error if the system is too small: `n ≥ k · (depth + 1) + 2`.
pub fn hidden_capacity_chains(
    n: usize,
    k: usize,
    depth: usize,
) -> Result<HiddenCapacityScenario, ModelError> {
    let chain_members = k * (depth + 1);
    if k == 0 || n < chain_members + 2 {
        return Err(ModelError::InvalidTaskParameter {
            reason: format!(
                "k = {k} chains of depth {depth} need at least {} processes, got {n}",
                chain_members + 2
            ),
        });
    }
    let mut inputs = vec![k as u64; n];
    let mut failures = FailurePattern::crash_free(n);
    for b in 0..k {
        inputs[b] = b as u64;
        for layer in 0..depth {
            let member = layer * k + b;
            let successor = (layer + 1) * k + b;
            failures.crash(member, (layer + 1) as u32, [successor])?;
        }
    }
    let adversary = Adversary::new(InputVector::from_values(inputs), failures)?;
    Ok(HiddenCapacityScenario { adversary, observer: ProcessId::new(n - 1), k, depth })
}

/// A Fig. 4-style scenario with its bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UniformGapScenario {
    /// The adversary realizing the scenario.
    pub adversary: Adversary,
    /// The agreement degree the scenario was built for.
    pub k: usize,
    /// The failure bound the scenario was built for (`t = k · rounds`).
    pub t: usize,
    /// The number of "blocked" rounds: failure-counting protocols decide only
    /// at time `rounds + 1 = ⌊t/k⌋ + 1`.
    pub rounds: usize,
    /// The relay process: it receives the silent group's round-1 messages and
    /// the proof of the visible group's crash, and re-broadcasts both in
    /// round 2.
    pub relay: ProcessId,
    /// The set of processes that never crash.
    pub correct: PidSet,
}

/// A Fig. 4-style family: the adversary on which `u-Pmin[k]` (and
/// `Optmin[k]`) decide at time 2 while every failure-counting protocol stays
/// undecided until `⌊t/k⌋ + 1`.
///
/// Construction, for `rounds = R ≥ 2` and `t = k · R`:
///
/// * **Group A** (`k` processes) crashes in round 1 delivering only to the
///   *relay* `h`.  Every correct process therefore discovers `k` new failures
///   in round 1, yet A's initial values reach everyone at time 2 through `h`.
/// * **Group B** (`k` processes) crashes in round 1 delivering to everyone
///   *except* `h`.  Correct processes receive B's round-1 messages, so they
///   miss B for the first time in round 2 (`k` new failures in round 2) —
///   but `h` observed B's silence in round 1 and its round-2 broadcast proves
///   to everyone that B crashed in round 1, so B's time-1 nodes are
///   *guaranteed crashed*, not hidden.
/// * **Groups A₃ … A_R** (`k` processes each) crash silently in rounds
///   `3 … R`, providing the `k` new failures those rounds need.  The relay
///   `h` is a member of A₃ when `R ≥ 3` (it has done its job by then).
/// * Every process starts with the high value `k`, so the surviving minimum
///   is `k` and it trivially persists.
///
/// At time 2 every correct process has seen every initial value (hidden
/// capacity 0 < `k`) and knows its minimum persists, so `u-Pmin[k]` decides
/// at time 2; the failure-counting baselines see `≥ k` new failures in every
/// round and wait for `⌊t/k⌋ + 1`.
///
/// # Errors
///
/// Returns an error if `k = 0`, `rounds < 2`, or the system cannot host
/// `k · rounds` faulty plus `extra_correct ≥ 2` correct processes.
pub fn uniform_gap(
    k: usize,
    rounds: usize,
    extra_correct: usize,
) -> Result<UniformGapScenario, ModelError> {
    if k == 0 || rounds < 2 {
        return Err(ModelError::InvalidTaskParameter {
            reason: format!(
                "the uniform-gap family needs k ≥ 1 and rounds ≥ 2, got k = {k}, rounds = {rounds}"
            ),
        });
    }
    if extra_correct < 2 {
        return Err(ModelError::InvalidTaskParameter {
            reason: "the uniform-gap family needs at least two correct processes".to_owned(),
        });
    }
    let t = k * rounds;
    let n = t + extra_correct;

    // Process layout: group A = 0..k, group B = k..2k, groups A₃…A_R follow,
    // correct processes at the end.
    let group_a: Vec<usize> = (0..k).collect();
    let group_b: Vec<usize> = (k..2 * k).collect();
    let relay = if rounds >= 3 { 2 * k } else { t };

    let inputs = InputVector::uniform(n, k as u64);
    let mut failures = FailurePattern::crash_free(n);
    for &a in &group_a {
        failures.crash(a, 1, [relay])?;
    }
    for &b in &group_b {
        let everyone_but_relay: Vec<usize> = (0..n).filter(|&p| p != relay).collect();
        failures.crash(b, 1, everyone_but_relay)?;
    }
    for round in 3..=rounds {
        for slot in 0..k {
            let member = (round - 1) * k + slot;
            failures.crash_silent(member, round as u32)?;
        }
    }

    let adversary = Adversary::new(inputs, failures)?;
    let correct: PidSet = (t..n).collect();
    Ok(UniformGapScenario { adversary, k, t, rounds, relay: ProcessId::new(relay), correct })
}

#[cfg(test)]
mod tests {
    use super::*;
    use knowledge::ViewAnalysis;
    use synchrony::{Node, Run, SystemParams, Time};

    fn run(adversary: &Adversary, t: usize, horizon: u32) -> Run {
        let params = SystemParams::new(adversary.n(), t).unwrap();
        Run::generate(params, adversary.clone(), Time::new(horizon)).unwrap()
    }

    #[test]
    fn hidden_path_keeps_the_value_invisible_to_the_observer() {
        let adversary = hidden_path(6, 3).unwrap();
        let run = run(&adversary, 3, 4);
        let observer = Node::new(5, Time::new(3));
        let analysis = ViewAnalysis::new(&run, observer).unwrap();
        assert!(!analysis.vals().contains(0u64));
        assert!(analysis.has_hidden_path());
        // The chain's endpoint has received the value.
        let endpoint = ViewAnalysis::new(&run, Node::new(3, Time::new(3))).unwrap();
        assert!(endpoint.vals().contains(0u64));
    }

    #[test]
    fn hidden_path_requires_enough_processes() {
        assert!(hidden_path(4, 3).is_err());
        assert!(hidden_path(5, 3).is_ok());
    }

    #[test]
    fn hidden_capacity_chains_maintain_exactly_k() {
        for k in 1..=3usize {
            let scenario = hidden_capacity_chains(3 * (k + 1) + k + 2, k, 2).unwrap();
            let t = scenario.adversary.num_failures();
            let run = run(&scenario.adversary, t, 3);
            for m in 1..=2u32 {
                let analysis =
                    ViewAnalysis::new(&run, Node::new(scenario.observer, Time::new(m))).unwrap();
                assert_eq!(analysis.hidden_capacity(), k, "k = {k}, time {m}");
                assert!(analysis.is_high(k));
            }
        }
    }

    #[test]
    fn hidden_capacity_chain_endpoints_hold_distinct_low_values() {
        let scenario = hidden_capacity_chains(12, 3, 2).unwrap();
        let t = scenario.adversary.num_failures();
        let run = run(&scenario.adversary, t, 3);
        for b in 0..3usize {
            let endpoint = 2 * 3 + b;
            let analysis = ViewAnalysis::new(&run, Node::new(endpoint, Time::new(2))).unwrap();
            let lows = analysis.lows(3);
            assert_eq!(lows.len(), 1, "chain {b} endpoint sees exactly its own low value");
            assert!(lows.contains(b as u64));
        }
    }

    #[test]
    fn uniform_gap_blocks_failure_counting_but_collapses_hidden_capacity() {
        let scenario = uniform_gap(3, 4, 3).unwrap();
        let run = run(&scenario.adversary, scenario.t, scenario.rounds as u32 + 2);
        for i in scenario.correct.iter() {
            // Every round up to R reveals at least k new failures…
            let late =
                ViewAnalysis::new(&run, Node::new(i, Time::new(scenario.rounds as u32))).unwrap();
            assert!(
                late.observations().every_round_reveals_at_least(scenario.k),
                "process {i} saw a clean round"
            );
            // …yet the hidden capacity is already below k at time 2.
            let at_two = ViewAnalysis::new(&run, Node::new(i, Time::new(2))).unwrap();
            assert!(at_two.hidden_capacity() < scenario.k);
            assert!(at_two.knows_will_persist(at_two.min_value()));
            // And at time 1 the hidden capacity is still exactly k (nobody can
            // decide earlier than time 2).
            let at_one = ViewAnalysis::new(&run, Node::new(i, Time::new(1))).unwrap();
            assert_eq!(at_one.hidden_capacity(), scenario.k);
        }
    }

    #[test]
    fn uniform_gap_respects_the_failure_budget() {
        for (k, rounds) in [(1usize, 3usize), (2, 2), (2, 5), (3, 3), (4, 2)] {
            let scenario = uniform_gap(k, rounds, 2).unwrap();
            assert_eq!(scenario.t, k * rounds);
            assert!(scenario.adversary.num_failures() <= scenario.t);
            assert_eq!(scenario.adversary.n(), scenario.t + 2);
        }
    }

    #[test]
    fn uniform_gap_rejects_degenerate_parameters() {
        assert!(uniform_gap(0, 3, 2).is_err());
        assert!(uniform_gap(2, 1, 2).is_err());
        assert!(uniform_gap(2, 3, 1).is_err());
    }
}
