//! The cross-space conformance suite of the `PatternSpace` contract.
//!
//! Every rankable pattern space must satisfy the same laws (see
//! `adversary::space`): ranks are a total order agreeing with the
//! materialized reference enumeration, subtree-count totals equal the
//! space length, and the pattern-major adversary cursor yields exactly
//! the `nth` sequence over arbitrary — including block-straddling —
//! ranges, materializing wholesale only on its first advance.  The suite
//! below runs one generic harness against **both** implemented spaces,
//! so a third space gets its contract checked by adding one case list.

use adversary::enumerate::{self, AdversarySpace, EnumerationConfig};
use adversary::space::{omission_patterns, OmissionConfig, PatternModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use synchrony::FailurePattern;

/// The crash-space cases: the small scopes the paper experiments sweep,
/// with both delivery regimes and every crash-round horizon exercised.
fn crash_cases() -> Vec<(AdversarySpace, Vec<FailurePattern>)> {
    [
        EnumerationConfig::small(3, 1, 1),
        EnumerationConfig { n: 4, t: 2, max_value: 1, max_crash_round: 1, partial_delivery: true },
        EnumerationConfig { n: 4, t: 2, max_value: 2, max_crash_round: 2, partial_delivery: false },
        EnumerationConfig { n: 3, t: 1, max_value: 1, max_crash_round: 0, partial_delivery: true },
    ]
    .into_iter()
    .map(|config| {
        let space = AdversarySpace::new(config).expect("valid crash scope");
        assert_eq!(space.model(), PatternModel::Crash);
        (space, enumerate::failure_patterns(&config))
    })
    .collect()
}

/// The omission-space cases: both round horizons, a saturated budget
/// (`t = n`, clamped mobile omitters), and the built-in scan shapes.
fn omission_cases() -> Vec<(AdversarySpace, Vec<FailurePattern>)> {
    [
        OmissionConfig::small(3, 1, 1),
        OmissionConfig { n: 4, t: 1, max_value: 1, rounds: 2 },
        OmissionConfig { n: 3, t: 2, max_value: 1, rounds: 1 },
        OmissionConfig { n: 3, t: 3, max_value: 1, rounds: 1 },
    ]
    .into_iter()
    .map(|config| {
        let space = AdversarySpace::omission(config).expect("valid omission scope");
        assert_eq!(space.model(), PatternModel::Omission);
        (space, omission_patterns(&config))
    })
    .collect()
}

/// Law 1 + 2: `pattern_at` agrees with the materialized reference at
/// every rank, and the counting tables sum to exactly the reference
/// length (no rank unreachable, none double-covered).
fn assert_rank_unrank_agrees(space: &AdversarySpace, reference: &[FailurePattern]) {
    assert_eq!(
        space.num_patterns(),
        reference.len() as u128,
        "{:?}: counting tables disagree with the reference enumeration",
        space.model()
    );
    for (rank, expected) in reference.iter().enumerate() {
        let got = space.pattern_at(rank as u128);
        assert_eq!(&got, expected, "{:?}: rank {rank} unranks wrong", space.model());
    }
    assert_eq!(
        space.len(),
        space.num_patterns() * space.inputs_per_pattern(),
        "{:?}: adversary count must be patterns × inputs",
        space.model()
    );
}

/// Law 3 + 4: over random block-straddling ranges the cursor yields the
/// exact `nth` sequence, overwrites a stale scratch wholesale on its
/// first advance (exactly one materialization per nonempty range), and
/// steps in place afterwards.
fn assert_cursor_matches_nth(space: &AdversarySpace) {
    let total = space.len();
    let block = space.inputs_per_pattern();
    let mut rng = StdRng::seed_from_u64(0x5EED ^ total as u64);
    for trial in 0..15u32 {
        let (start, end) = match trial {
            0 => (0, total),
            // Starts mid-block and ends mid-block two patterns later.
            1 => (block / 2, (block * 2 + block / 2).min(total)),
            2 => (total, total),
            _ => {
                let a = rng.random_range(0..total as u64) as u128;
                let b = rng.random_range(0..=total as u64) as u128;
                (a.min(b), a.max(b))
            }
        };
        let mut cursor = space.cursor(start, end);
        // A stale scratch from "another shard": the first advance must
        // overwrite it wholesale, not increment it.
        let mut scratch = space.nth(total - 1);
        let mut index = start;
        while cursor.advance(&mut scratch) {
            assert_eq!(
                scratch,
                space.nth(index),
                "{:?}: cursor diverges from nth at {index} in {start}..{end}",
                space.model()
            );
            index += 1;
        }
        assert_eq!(index, end, "{:?}: cursor stopped early on {start}..{end}", space.model());
        let counters = cursor.counters();
        assert_eq!(counters.total(), (end - start) as u64);
        assert_eq!(
            counters.materialized,
            u64::from(end > start),
            "{:?}: exactly one wholesale materialization per nonempty range",
            space.model()
        );
    }
}

#[test]
fn crash_space_ranks_agree_with_the_reference() {
    for (space, reference) in crash_cases() {
        assert_rank_unrank_agrees(&space, &reference);
    }
}

#[test]
fn omission_space_ranks_agree_with_the_reference() {
    for (space, reference) in omission_cases() {
        assert_rank_unrank_agrees(&space, &reference);
    }
}

#[test]
fn crash_cursor_matches_nth_over_straddling_ranges() {
    for (space, _) in crash_cases() {
        assert_cursor_matches_nth(&space);
    }
}

#[test]
fn omission_cursor_matches_nth_over_straddling_ranges() {
    for (space, _) in omission_cases() {
        assert_cursor_matches_nth(&space);
    }
}

/// Cross-space sanity: the two models never produce equal patterns
/// beyond the failure-free one, and their spaces disagree in size on the
/// same `(n, t)` shape — a guard against one space accidentally
/// delegating to the other.
#[test]
fn the_two_spaces_are_genuinely_different() {
    let crash = AdversarySpace::new(EnumerationConfig::small(3, 1, 1)).unwrap();
    let omission = AdversarySpace::omission(OmissionConfig::small(3, 1, 1)).unwrap();
    assert_ne!(crash.len(), omission.len());
    // Rank 0 is failure-free in both (the empty pattern sorts first).
    assert_eq!(crash.pattern_at(0), omission.pattern_at(0));
    assert!(!crash.pattern_at(0).has_omissions());
    // Every other omission pattern omits without crashing anyone.
    for rank in 1..omission.num_patterns() {
        let pattern = omission.pattern_at(rank);
        assert!(pattern.has_omissions(), "omission rank {rank} must omit");
        assert_eq!(pattern.num_faulty(), 0, "omission senders never crash");
    }
}
