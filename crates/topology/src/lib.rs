//! Combinatorial-topology toolkit for the set-consensus reproduction.
//!
//! The topological proof of the paper's Lemma 1 (Appendix B.1) and the
//! hidden-capacity/connectivity connection of Proposition 2 rest on a small
//! amount of combinatorial topology, all of which is implemented here:
//!
//! * [`Simplex`] and [`SimplicialComplex`] — abstract simplices and
//!   complexes, with stars, links, joins and skeletons;
//! * [`subdivision`] — the barycentric subdivision and the paper's `Div σ`
//!   variant (Appendix B.1.2), with carrier tracking;
//! * [`sperner`] — Sperner colorings and a computational verification of
//!   Sperner's lemma (Lemma 4);
//! * [`homology`] — reduced GF(2) Betti numbers, used as the computational
//!   proxy for `q`-connectivity;
//! * [`ProtocolComplex`] — protocol complexes of the full-information
//!   protocol over a set of adversaries, and the star complexes
//!   `St(⟨i,m⟩, P_m)` of Proposition 2.
//!
//! ```
//! use topology::{sperner, Simplex, Subdivision};
//!
//! // The paper's subdivision of the k-simplex, for k = 3.
//! let sub = Subdivision::paper_div(&Simplex::new(0..=3));
//! let coloring = sperner::Coloring::min_of_carrier(&sub);
//! assert!(sperner::verify_sperner_lemma(&sub, &coloring));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod complex;
pub mod homology;
pub mod protocol_complex;
pub mod simplex;
pub mod sperner;
pub mod subdivision;

pub use complex::SimplicialComplex;
pub use homology::{betti_numbers, connected_components, is_q_connected, BettiNumbers};
pub use protocol_complex::ProtocolComplex;
pub use simplex::Simplex;
pub use sperner::Coloring;
pub use subdivision::{DivVertex, Subdivision};
