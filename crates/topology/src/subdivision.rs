//! Subdivisions of a simplex: the barycentric subdivision and the paper's
//! `Div σ` variant (Appendix B.1.2), with carrier tracking.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Simplex, SimplicialComplex};

/// A vertex of a subdivision: either an original vertex of the base simplex,
/// or a new vertex identified with the face it subdivides.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DivVertex {
    /// An original vertex of the base simplex.
    Original(usize),
    /// A new vertex placed "inside" the given face of the base simplex.
    Face(BTreeSet<usize>),
}

impl DivVertex {
    /// Returns the carrier of this vertex: the smallest face of the base
    /// simplex containing it.
    pub fn carrier(&self) -> Simplex {
        match self {
            DivVertex::Original(v) => Simplex::vertex(*v),
            DivVertex::Face(face) => Simplex::new(face.iter().copied()),
        }
    }
}

impl fmt::Display for DivVertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivVertex::Original(v) => write!(f, "{v}"),
            DivVertex::Face(face) => {
                write!(f, "⟨")?;
                for (i, v) in face.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "⟩")
            }
        }
    }
}

/// A subdivision of a base simplex, with carrier tracking.
///
/// The subdivision is stored as a [`SimplicialComplex`] over integer vertex
/// identifiers; [`Subdivision::carrier`] recovers the face of the base
/// simplex that carries each identifier, which is what Sperner colorings are
/// defined against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subdivision {
    base: Simplex,
    complex: SimplicialComplex,
    vertices: Vec<DivVertex>,
}

/// Internal builder interning [`DivVertex`]es as integer identifiers.
#[derive(Debug, Default)]
struct Interner {
    ids: BTreeMap<DivVertex, usize>,
    vertices: Vec<DivVertex>,
}

impl Interner {
    fn id(&mut self, vertex: DivVertex) -> usize {
        if let Some(&id) = self.ids.get(&vertex) {
            return id;
        }
        let id = self.vertices.len();
        self.ids.insert(vertex.clone(), id);
        self.vertices.push(vertex);
        id
    }
}

impl Subdivision {
    /// Returns the trivial subdivision: the base simplex subdivided into
    /// itself.
    pub fn trivial(base: &Simplex) -> Self {
        let mut interner = Interner::default();
        let ids: Vec<usize> =
            base.vertices().map(|v| interner.id(DivVertex::Original(v))).collect();
        let complex = SimplicialComplex::from_simplices([Simplex::new(ids)]);
        Subdivision { base: base.clone(), complex, vertices: interner.vertices }
    }

    /// Builds the barycentric subdivision of `base`: one new vertex per face,
    /// with simplices given by chains of faces ordered by inclusion.
    pub fn barycentric(base: &Simplex) -> Self {
        let mut interner = Interner::default();
        let mut complex = SimplicialComplex::new();
        // Enumerate chains of faces by recursion over the largest element.
        let faces: Vec<Simplex> = base.faces().collect();
        // For every face, the chains ending at that face are the chains of its
        // proper faces extended by it.  A simple way: depth-first over faces
        // ordered by dimension.
        fn chains(top: &Simplex, interner: &mut Interner, complex: &mut SimplicialComplex) {
            // The chain consisting of `top` alone:
            let top_id = interner.id(face_vertex(top));
            complex.add(Simplex::vertex(top_id));
            // Extend chains of proper faces.
            fn extend(
                current: &[usize],
                face: &Simplex,
                interner: &mut Interner,
                complex: &mut SimplicialComplex,
            ) {
                let id = interner.id(face_vertex(face));
                let mut chain = current.to_vec();
                chain.push(id);
                complex.add(Simplex::new(chain.iter().copied()));
                if face.dimension() == 0 {
                    return;
                }
                for sub in face.boundary() {
                    extend(&chain, &sub, interner, complex);
                }
            }
            extend(&[], top, interner, complex);
        }
        fn face_vertex(face: &Simplex) -> DivVertex {
            if face.dimension() == 0 {
                DivVertex::Original(face.vertices().next().expect("vertex"))
            } else {
                DivVertex::Face(face.vertices().collect())
            }
        }
        for face in &faces {
            chains(face, &mut interner, &mut complex);
        }
        Subdivision { base: base.clone(), complex, vertices: interner.vertices }
    }

    /// Builds the paper's subdivision `Div σ` (Appendix B.1.2), which only
    /// subdivides the faces containing the distinguished vertex — the largest
    /// vertex of `base`, playing the role of the high value `k` — and leaves
    /// the edge `{0, k}` (smallest and largest vertex) whole.
    pub fn paper_div(base: &Simplex) -> Self {
        let distinguished = base.vertices().max().expect("non-empty simplex");
        let smallest = base.vertices().min().expect("non-empty simplex");
        let mut interner = Interner::default();
        let mut complex = SimplicialComplex::new();
        let top = div_face(base, distinguished, smallest, &mut interner);
        for simplex in top.simplices() {
            complex.add(simplex.clone());
        }
        Subdivision { base: base.clone(), complex, vertices: interner.vertices }
    }

    /// Returns the base simplex.
    pub fn base(&self) -> &Simplex {
        &self.base
    }

    /// Returns the underlying complex of the subdivision.
    pub fn complex(&self) -> &SimplicialComplex {
        &self.complex
    }

    /// Returns the number of vertices of the subdivision.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Returns the vertex with the given identifier.
    pub fn vertex(&self, id: usize) -> &DivVertex {
        &self.vertices[id]
    }

    /// Returns the carrier of the vertex with the given identifier.
    pub fn carrier(&self, id: usize) -> Simplex {
        self.vertices[id].carrier()
    }

    /// Iterates over the facets of the subdivision that have the full
    /// dimension of the base simplex.
    pub fn full_facets(&self) -> impl Iterator<Item = &Simplex> {
        let dim = self.base.dimension();
        self.complex.simplices_of_dim(dim)
    }

    /// Performs structural sanity checks: every vertex's carrier is a face of
    /// the base, every full-dimensional facet's carriers cover the base, and
    /// the subdivision is pure of the base dimension.
    pub fn is_structurally_valid(&self) -> bool {
        let carriers_ok =
            (0..self.num_vertices()).all(|id| self.carrier(id).is_face_of(&self.base));
        let pure =
            self.complex.is_pure() && self.complex.dimension() == Some(self.base.dimension());
        let facets_cover = self.full_facets().all(|facet| {
            let union = facet
                .vertices()
                .map(|id| self.carrier(id))
                .reduce(|a, b| a.union(&b))
                .expect("facet has vertices");
            union == self.base
        });
        carriers_ok && pure && facets_cover
    }
}

/// Recursively builds `Div σ′` for a face of the base simplex, per the
/// definition in Appendix B.1.2.
fn div_face(
    face: &Simplex,
    distinguished: usize,
    smallest: usize,
    interner: &mut Interner,
) -> SimplicialComplex {
    let original_ids: Vec<usize> =
        face.vertices().map(|v| interner.id(DivVertex::Original(v))).collect();
    let keep_whole = !face.contains(distinguished)
        || (face.dimension() == 1 && face.contains(smallest) && face.contains(distinguished))
        || face.dimension() == 0;
    if keep_whole {
        return SimplicialComplex::from_simplices([Simplex::new(original_ids)]);
    }
    // Cone from the new center vertex over the subdivided boundary.
    let center = interner.id(DivVertex::Face(face.vertices().collect()));
    let mut complex = SimplicialComplex::new();
    complex.add(Simplex::vertex(center));
    for boundary_face in face.boundary() {
        let sub = div_face(&boundary_face, distinguished, smallest, interner);
        for simplex in sub.simplices() {
            complex.add(simplex.clone());
            complex.add(simplex.with(center));
        }
    }
    complex
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::homology;

    #[test]
    fn trivial_subdivision_is_the_simplex_itself() {
        let base = Simplex::new([0, 1, 2]);
        let sub = Subdivision::trivial(&base);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.full_facets().count(), 1);
        assert!(sub.is_structurally_valid());
    }

    #[test]
    fn barycentric_subdivision_of_a_triangle() {
        let base = Simplex::new([0, 1, 2]);
        let sub = Subdivision::barycentric(&base);
        // Vertices: 3 originals + 3 edge centers + 1 face center.
        assert_eq!(sub.num_vertices(), 7);
        // Facets: (dim + 1)! = 6 triangles.
        assert_eq!(sub.full_facets().count(), 6);
        assert!(sub.is_structurally_valid());
        // A subdivision of a simplex is contractible.
        assert!(homology::is_q_connected(sub.complex(), 2));
    }

    #[test]
    fn barycentric_subdivision_of_an_edge() {
        let base = Simplex::new([0, 1]);
        let sub = Subdivision::barycentric(&base);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.full_facets().count(), 2);
        assert!(sub.is_structurally_valid());
    }

    #[test]
    fn paper_div_keeps_faces_without_the_distinguished_vertex_whole() {
        // For σ = {0, 1, 2} with distinguished vertex 2 (the "k" of the
        // paper), the edge {0, 1} and the edge {0, 2} remain whole, while
        // {1, 2} and the triangle itself are subdivided (see Fig. 5, center).
        let base = Simplex::new([0, 1, 2]);
        let sub = Subdivision::paper_div(&base);
        assert!(sub.is_structurally_valid());
        // New vertices: one for {1,2} and one for {0,1,2}.
        assert_eq!(sub.num_vertices(), 5);
        // Facets: the cone from the center over Div(Bd σ), whose boundary has
        // edges {0,1}, {0,2} and the two halves of {1,2} — four triangles.
        assert_eq!(sub.full_facets().count(), 4);
        assert!(homology::is_q_connected(sub.complex(), 1));
    }

    #[test]
    fn paper_div_for_higher_dimension_is_valid_and_contractible() {
        for k in 1..=4usize {
            let base = Simplex::new(0..=k);
            let sub = Subdivision::paper_div(&base);
            assert!(sub.is_structurally_valid(), "k = {k}");
            assert!(
                homology::is_q_connected(sub.complex(), k.saturating_sub(1)),
                "Div σ should be contractible for k = {k}"
            );
            // Every carrier is a face containing the distinguished vertex or an
            // original vertex.
            for id in 0..sub.num_vertices() {
                match sub.vertex(id) {
                    DivVertex::Original(_) => {}
                    DivVertex::Face(face) => {
                        assert!(face.contains(&k), "only faces containing k are subdivided");
                        assert!(face.len() >= 2);
                    }
                }
            }
        }
    }

    #[test]
    fn paper_div_of_an_edge_with_only_low_values_is_whole() {
        // σ = {0, 1} with distinguished vertex 1: the edge {0, 1} is the
        // {0, k} edge and is kept whole.
        let base = Simplex::new([0, 1]);
        let sub = Subdivision::paper_div(&base);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.full_facets().count(), 1);
    }

    #[test]
    fn carriers_are_faces_of_the_base() {
        let base = Simplex::new(0..=3);
        for sub in [Subdivision::barycentric(&base), Subdivision::paper_div(&base)] {
            for id in 0..sub.num_vertices() {
                assert!(sub.carrier(id).is_face_of(&base));
            }
        }
    }
}
