//! Abstract simplices over integer vertex identifiers.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An abstract simplex: a finite, non-empty set of vertex identifiers.
///
/// The dimension of a simplex is one less than its cardinality; a vertex is a
/// 0-simplex, an edge a 1-simplex, and so on.
///
/// ```
/// use topology::Simplex;
///
/// let triangle = Simplex::new([0, 1, 2]);
/// assert_eq!(triangle.dimension(), 2);
/// assert_eq!(triangle.faces().count(), 7); // all non-empty proper and improper faces
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Simplex {
    vertices: BTreeSet<usize>,
}

impl Simplex {
    /// Creates a simplex from its vertices (duplicates are ignored).
    ///
    /// # Panics
    ///
    /// Panics if the vertex set is empty; the empty simplex is not
    /// representable.
    pub fn new(vertices: impl IntoIterator<Item = usize>) -> Self {
        let vertices: BTreeSet<usize> = vertices.into_iter().collect();
        assert!(!vertices.is_empty(), "a simplex has at least one vertex");
        Simplex { vertices }
    }

    /// Creates the 0-simplex `{vertex}`.
    pub fn vertex(vertex: usize) -> Self {
        Simplex::new([vertex])
    }

    /// Returns the dimension (cardinality minus one).
    pub fn dimension(&self) -> usize {
        self.vertices.len() - 1
    }

    /// Returns the number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Returns `false`; a simplex always has at least one vertex.  Provided
    /// for API completeness alongside [`Simplex::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if `vertex` belongs to the simplex.
    pub fn contains(&self, vertex: usize) -> bool {
        self.vertices.contains(&vertex)
    }

    /// Iterates over the vertices in increasing order.
    pub fn vertices(&self) -> impl Iterator<Item = usize> + '_ {
        self.vertices.iter().copied()
    }

    /// Returns `true` if `self` is a (not necessarily proper) face of `other`.
    pub fn is_face_of(&self, other: &Simplex) -> bool {
        self.vertices.is_subset(&other.vertices)
    }

    /// Returns the face obtained by removing `vertex`, or `None` if the
    /// simplex is a single vertex or does not contain it.
    pub fn without(&self, vertex: usize) -> Option<Simplex> {
        if !self.contains(vertex) || self.len() == 1 {
            return None;
        }
        let vertices: BTreeSet<usize> =
            self.vertices.iter().copied().filter(|&v| v != vertex).collect();
        Some(Simplex { vertices })
    }

    /// Returns the simplex extended by `vertex`.
    pub fn with(&self, vertex: usize) -> Simplex {
        let mut vertices = self.vertices.clone();
        vertices.insert(vertex);
        Simplex { vertices }
    }

    /// Iterates over all non-empty faces, including the simplex itself.
    pub fn faces(&self) -> impl Iterator<Item = Simplex> + '_ {
        let vertices: Vec<usize> = self.vertices.iter().copied().collect();
        let count = 1usize << vertices.len();
        (1..count).map(move |mask| {
            Simplex::new(
                vertices
                    .iter()
                    .enumerate()
                    .filter(|(bit, _)| mask & (1 << bit) != 0)
                    .map(|(_, &v)| v),
            )
        })
    }

    /// Iterates over the codimension-1 faces (the boundary facets).
    pub fn boundary(&self) -> impl Iterator<Item = Simplex> + '_ {
        self.vertices.iter().copied().filter_map(|v| self.without(v))
    }

    /// Returns the union of the two vertex sets (the join of disjoint
    /// simplices, or simply the combined simplex otherwise).
    pub fn union(&self, other: &Simplex) -> Simplex {
        Simplex { vertices: self.vertices.union(&other.vertices).copied().collect() }
    }
}

impl fmt::Display for Simplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.vertices().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_and_membership() {
        let s = Simplex::new([3, 1, 2]);
        assert_eq!(s.dimension(), 2);
        assert!(s.contains(1));
        assert!(!s.contains(0));
        assert_eq!(s.vertices().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn duplicates_are_collapsed() {
        assert_eq!(Simplex::new([1, 1, 2]), Simplex::new([1, 2]));
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn empty_simplex_is_rejected() {
        let _ = Simplex::new(Vec::<usize>::new());
    }

    #[test]
    fn faces_enumerate_the_power_set_minus_empty() {
        let s = Simplex::new([0, 1, 2]);
        let faces: Vec<Simplex> = s.faces().collect();
        assert_eq!(faces.len(), 7);
        assert!(faces.contains(&Simplex::vertex(0)));
        assert!(faces.contains(&Simplex::new([0, 2])));
        assert!(faces.contains(&s));
    }

    #[test]
    fn boundary_has_dimension_one_less() {
        let s = Simplex::new([0, 1, 2]);
        let boundary: Vec<Simplex> = s.boundary().collect();
        assert_eq!(boundary.len(), 3);
        for face in &boundary {
            assert_eq!(face.dimension(), 1);
            assert!(face.is_face_of(&s));
        }
        assert!(Simplex::vertex(5).boundary().next().is_none());
    }

    #[test]
    fn with_and_without_are_inverse() {
        let s = Simplex::new([0, 1]);
        assert_eq!(s.with(2).without(2), Some(s.clone()));
        assert_eq!(s.without(9), None);
        assert_eq!(Simplex::vertex(0).without(0), None);
    }

    #[test]
    fn union_merges_vertices() {
        let a = Simplex::new([0, 1]);
        let b = Simplex::new([2]);
        assert_eq!(a.union(&b), Simplex::new([0, 1, 2]));
    }
}
