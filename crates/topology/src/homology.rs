//! Simplicial homology over GF(2) and connectivity checks.
//!
//! The paper's lower-bound machinery is phrased in terms of `(k−1)`-
//! connectivity of (sub)complexes of the protocol complex.  Deciding
//! topological `q`-connectivity exactly is undecidable in general, but the
//! standard computational proxy in the topology-of-distributed-computing
//! literature is the vanishing of the reduced homology groups up to
//! dimension `q`.  Over GF(2) these reduce to rank computations on boundary
//! matrices, which is what this module implements.

use serde::{Deserialize, Serialize};

use crate::{Simplex, SimplicialComplex};

/// The reduced GF(2) Betti numbers `β̃_0, β̃_1, …` of a complex, up to the
/// complex's dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BettiNumbers {
    reduced: Vec<usize>,
}

impl BettiNumbers {
    /// Returns the reduced Betti number `β̃_d`, or 0 beyond the complex's
    /// dimension.
    pub fn reduced(&self, d: usize) -> usize {
        self.reduced.get(d).copied().unwrap_or(0)
    }

    /// Returns all computed reduced Betti numbers in dimension order.
    pub fn all(&self) -> &[usize] {
        &self.reduced
    }

    /// Returns `true` if `β̃_0 = … = β̃_q = 0`, the homological proxy for
    /// `q`-connectivity used throughout this reproduction.
    pub fn is_connected_up_to(&self, q: usize) -> bool {
        (0..=q).all(|d| self.reduced(d) == 0)
    }
}

/// A GF(2) matrix stored column-wise as bit vectors, sufficient for the rank
/// computations of boundary maps.
#[derive(Debug, Clone)]
struct Gf2Matrix {
    rows: usize,
    columns: Vec<Vec<u64>>,
}

impl Gf2Matrix {
    fn new(rows: usize) -> Self {
        Gf2Matrix { rows, columns: Vec::new() }
    }

    fn add_column(&mut self, one_rows: impl IntoIterator<Item = usize>) {
        let mut column = vec![0u64; self.rows.div_ceil(64)];
        for row in one_rows {
            column[row / 64] |= 1 << (row % 64);
        }
        self.columns.push(column);
    }

    /// Computes the rank by Gaussian elimination over GF(2).
    fn rank(mut self) -> usize {
        let mut rank = 0;
        let words = self.rows.div_ceil(64);
        let mut pivot_row = 0;
        while pivot_row < self.rows && rank < self.columns.len() {
            let word = pivot_row / 64;
            let bit = 1u64 << (pivot_row % 64);
            // Find a column with a 1 in the pivot row, among the unused ones.
            if let Some(pivot_col) =
                (rank..self.columns.len()).find(|&c| self.columns[c][word] & bit != 0)
            {
                self.columns.swap(rank, pivot_col);
                // Eliminate the pivot row from every other column.
                for c in 0..self.columns.len() {
                    if c != rank && self.columns[c][word] & bit != 0 {
                        for w in 0..words {
                            let pivot_word = self.columns[rank][w];
                            self.columns[c][w] ^= pivot_word;
                        }
                    }
                }
                rank += 1;
            }
            pivot_row += 1;
        }
        rank
    }
}

/// Computes the reduced GF(2) Betti numbers of a complex.
///
/// For the empty complex all reduced Betti numbers are zero by convention
/// (the paper never evaluates connectivity of an empty subcomplex).
pub fn betti_numbers(complex: &SimplicialComplex) -> BettiNumbers {
    let Some(dimension) = complex.dimension() else {
        return BettiNumbers { reduced: Vec::new() };
    };

    // Index the simplices of each dimension.
    let mut by_dim: Vec<Vec<&Simplex>> = vec![Vec::new(); dimension + 1];
    for simplex in complex.simplices() {
        by_dim[simplex.dimension()].push(simplex);
    }
    let index_of = |dim: usize, simplex: &Simplex| -> usize {
        by_dim[dim]
            .binary_search_by(|probe| probe.cmp(&simplex))
            .expect("faces of stored simplices are stored")
    };

    // rank of ∂_d for d = 0..=dimension+1, where ∂_0 is the augmentation map
    // (every vertex maps to the single generator of GF(2)).
    let mut ranks = vec![0usize; dimension + 2];
    // Augmentation: a 1 × n_0 matrix of ones has rank 1 whenever n_0 > 0.
    ranks[0] = usize::from(!by_dim[0].is_empty());
    for d in 1..=dimension {
        let mut matrix = Gf2Matrix::new(by_dim[d - 1].len());
        for simplex in &by_dim[d] {
            matrix.add_column(simplex.boundary().map(|face| index_of(d - 1, &face)));
        }
        ranks[d] = matrix.rank();
    }
    ranks[dimension + 1] = 0;

    let reduced = (0..=dimension).map(|d| by_dim[d].len() - ranks[d] - ranks[d + 1]).collect();
    BettiNumbers { reduced }
}

/// Returns the number of connected components of the complex (0 for the
/// empty complex).
pub fn connected_components(complex: &SimplicialComplex) -> usize {
    if complex.is_empty() {
        return 0;
    }
    betti_numbers(complex).reduced(0) + 1
}

/// Returns `true` if the complex is non-empty and its reduced homology
/// vanishes up to dimension `q` — the computational proxy for
/// `q`-connectivity.
pub fn is_q_connected(complex: &SimplicialComplex, q: usize) -> bool {
    !complex.is_empty() && betti_numbers(complex).is_connected_up_to(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(vertices: impl IntoIterator<Item = usize>) -> SimplicialComplex {
        SimplicialComplex::from_simplices([Simplex::new(vertices)])
    }

    fn sphere(dim: usize) -> SimplicialComplex {
        // Boundary of a (dim+1)-simplex.
        SimplicialComplex::from_simplices(Simplex::new(0..=dim + 1).boundary())
    }

    #[test]
    fn a_full_simplex_is_highly_connected() {
        let complex = full(0..4);
        let betti = betti_numbers(&complex);
        assert_eq!(betti.all(), &[0, 0, 0, 0]);
        assert!(is_q_connected(&complex, 2));
        assert_eq!(connected_components(&complex), 1);
    }

    #[test]
    fn two_disjoint_edges_are_disconnected() {
        let complex =
            SimplicialComplex::from_simplices([Simplex::new([0, 1]), Simplex::new([2, 3])]);
        assert_eq!(connected_components(&complex), 2);
        assert_eq!(betti_numbers(&complex).reduced(0), 1);
        assert!(!is_q_connected(&complex, 0));
    }

    #[test]
    fn the_circle_is_connected_but_not_one_connected() {
        let circle = sphere(1); // boundary of a triangle
        let betti = betti_numbers(&circle);
        assert_eq!(betti.reduced(0), 0);
        assert_eq!(betti.reduced(1), 1);
        assert!(is_q_connected(&circle, 0));
        assert!(!is_q_connected(&circle, 1));
    }

    #[test]
    fn the_two_sphere_has_a_two_dimensional_hole() {
        let s2 = sphere(2);
        let betti = betti_numbers(&s2);
        assert_eq!(betti.reduced(0), 0);
        assert_eq!(betti.reduced(1), 0);
        assert_eq!(betti.reduced(2), 1);
        assert!(is_q_connected(&s2, 1));
        assert!(!is_q_connected(&s2, 2));
    }

    #[test]
    fn the_empty_complex_is_never_connected() {
        let empty = SimplicialComplex::new();
        assert_eq!(connected_components(&empty), 0);
        assert!(!is_q_connected(&empty, 0));
        assert!(betti_numbers(&empty).all().is_empty());
    }

    #[test]
    fn euler_characteristic_matches_betti_numbers_on_examples() {
        // χ = Σ (−1)^d n_d = 1 + Σ (−1)^d β̃_d  over GF(2)-acyclic-free cases
        // where homology has no torsion (always true over a field).
        for complex in [full(0..3), sphere(1), sphere(2)] {
            let betti = betti_numbers(&complex);
            let alternating: i64 = betti
                .all()
                .iter()
                .enumerate()
                .map(|(d, &b)| if d % 2 == 0 { b as i64 } else { -(b as i64) })
                .sum();
            assert_eq!(complex.euler_characteristic(), 1 + alternating);
        }
    }

    #[test]
    fn a_wedge_of_circles_has_first_betti_two() {
        // Two triangles sharing the vertex 0.
        let complex = SimplicialComplex::from_simplices([
            Simplex::new([0, 1]),
            Simplex::new([1, 2]),
            Simplex::new([0, 2]),
            Simplex::new([0, 3]),
            Simplex::new([3, 4]),
            Simplex::new([0, 4]),
        ]);
        let betti = betti_numbers(&complex);
        assert_eq!(betti.reduced(0), 0);
        assert_eq!(betti.reduced(1), 2);
    }
}
