//! Abstract simplicial complexes.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Simplex;

/// An abstract simplicial complex: a finite collection of simplices closed
/// under taking faces.
///
/// The complex stores every simplex explicitly (not just the facets), which
/// keeps face queries and boundary-matrix construction simple; the complexes
/// arising in this reproduction are small.
///
/// ```
/// use topology::{Simplex, SimplicialComplex};
///
/// let mut complex = SimplicialComplex::new();
/// complex.add(Simplex::new([0, 1, 2]));
/// complex.add(Simplex::new([2, 3]));
/// assert_eq!(complex.dimension(), Some(2));
/// assert_eq!(complex.simplices_of_dim(1).count(), 4);
/// assert!(complex.contains(&Simplex::new([0, 2])));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimplicialComplex {
    simplices: BTreeSet<Simplex>,
}

impl SimplicialComplex {
    /// Creates an empty complex.
    pub fn new() -> Self {
        SimplicialComplex { simplices: BTreeSet::new() }
    }

    /// Creates a complex from a collection of (generating) simplices; faces
    /// are added automatically.
    pub fn from_simplices(simplices: impl IntoIterator<Item = Simplex>) -> Self {
        let mut complex = SimplicialComplex::new();
        for simplex in simplices {
            complex.add(simplex);
        }
        complex
    }

    /// Adds a simplex and all of its faces.  Returns `true` if the simplex was
    /// not already present.
    pub fn add(&mut self, simplex: Simplex) -> bool {
        if self.simplices.contains(&simplex) {
            return false;
        }
        for face in simplex.faces() {
            self.simplices.insert(face);
        }
        self.simplices.insert(simplex)
    }

    /// Returns `true` if the simplex belongs to the complex.
    pub fn contains(&self, simplex: &Simplex) -> bool {
        self.simplices.contains(simplex)
    }

    /// Returns the number of simplices (of all dimensions).
    pub fn len(&self) -> usize {
        self.simplices.len()
    }

    /// Returns `true` if the complex has no simplices.
    pub fn is_empty(&self) -> bool {
        self.simplices.is_empty()
    }

    /// Returns the dimension of the complex (the largest simplex dimension),
    /// or `None` if the complex is empty.
    pub fn dimension(&self) -> Option<usize> {
        self.simplices.iter().map(Simplex::dimension).max()
    }

    /// Iterates over every simplex in the complex.
    pub fn simplices(&self) -> impl Iterator<Item = &Simplex> {
        self.simplices.iter()
    }

    /// Iterates over the simplices of a given dimension.
    pub fn simplices_of_dim(&self, dim: usize) -> impl Iterator<Item = &Simplex> {
        self.simplices.iter().filter(move |s| s.dimension() == dim)
    }

    /// Returns the set of vertices of the complex.
    pub fn vertex_set(&self) -> BTreeSet<usize> {
        self.simplices.iter().flat_map(|s| s.vertices()).collect()
    }

    /// Iterates over the facets: the simplices that are maximal under
    /// inclusion.
    pub fn facets(&self) -> impl Iterator<Item = &Simplex> {
        self.simplices
            .iter()
            .filter(move |s| !self.simplices.iter().any(|other| other != *s && s.is_face_of(other)))
    }

    /// Returns `true` if all facets have the same dimension.
    pub fn is_pure(&self) -> bool {
        let dims: BTreeSet<usize> = self.facets().map(Simplex::dimension).collect();
        dims.len() <= 1
    }

    /// Returns the `d`-skeleton: all simplices of dimension at most `d`.
    pub fn skeleton(&self, d: usize) -> SimplicialComplex {
        SimplicialComplex {
            simplices: self.simplices.iter().filter(|s| s.dimension() <= d).cloned().collect(),
        }
    }

    /// Returns the *star* of `vertex`: the subcomplex consisting of every
    /// simplex that contains the vertex, together with all of their faces
    /// (the closed star `St(v, K)` of the paper).
    pub fn star(&self, vertex: usize) -> SimplicialComplex {
        SimplicialComplex::from_simplices(
            self.simplices.iter().filter(|s| s.contains(vertex)).cloned(),
        )
    }

    /// Returns the *link* of `vertex`: the faces of the star that do not
    /// contain the vertex.
    pub fn link(&self, vertex: usize) -> SimplicialComplex {
        SimplicialComplex {
            simplices: self
                .star(vertex)
                .simplices
                .into_iter()
                .filter(|s| !s.contains(vertex))
                .collect(),
        }
    }

    /// Returns the join `K ∗ L` of two complexes on disjoint vertex sets:
    /// every union of a simplex of `K` with a simplex of `L` (plus the two
    /// complexes themselves).
    ///
    /// # Panics
    ///
    /// Panics if the vertex sets are not disjoint.
    pub fn join(&self, other: &SimplicialComplex) -> SimplicialComplex {
        assert!(
            self.vertex_set().is_disjoint(&other.vertex_set()),
            "the join is defined for complexes on disjoint vertex sets"
        );
        let mut joined = SimplicialComplex::new();
        for a in &self.simplices {
            joined.add(a.clone());
        }
        for b in &other.simplices {
            joined.add(b.clone());
        }
        for a in &self.simplices {
            for b in &other.simplices {
                joined.add(a.union(b));
            }
        }
        joined
    }

    /// Returns the Euler characteristic `Σ (−1)^d · n_d`.
    pub fn euler_characteristic(&self) -> i64 {
        self.simplices.iter().map(|s| if s.dimension() % 2 == 0 { 1i64 } else { -1i64 }).sum()
    }
}

impl FromIterator<Simplex> for SimplicialComplex {
    fn from_iter<I: IntoIterator<Item = Simplex>>(iter: I) -> Self {
        SimplicialComplex::from_simplices(iter)
    }
}

impl fmt::Display for SimplicialComplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "complex with {} vertices, {} simplices, dimension {:?}",
            self.vertex_set().len(),
            self.len(),
            self.dimension()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_boundary() -> SimplicialComplex {
        // The hollow triangle: three edges, no 2-face.
        SimplicialComplex::from_simplices([
            Simplex::new([0, 1]),
            Simplex::new([1, 2]),
            Simplex::new([0, 2]),
        ])
    }

    #[test]
    fn adding_a_simplex_adds_all_faces() {
        let mut complex = SimplicialComplex::new();
        complex.add(Simplex::new([0, 1, 2]));
        assert_eq!(complex.len(), 7);
        assert!(complex.contains(&Simplex::vertex(1)));
        assert!(complex.contains(&Simplex::new([0, 2])));
        assert!(!complex.add(Simplex::new([0, 1, 2])), "re-adding returns false");
    }

    #[test]
    fn facets_are_maximal_simplices() {
        let mut complex = triangle_boundary();
        complex.add(Simplex::new([2, 3]));
        let facets: Vec<&Simplex> = complex.facets().collect();
        assert_eq!(facets.len(), 4);
        assert!(complex.is_pure());
        complex.add(Simplex::vertex(9));
        assert!(!complex.is_pure());
    }

    #[test]
    fn star_and_link_of_a_vertex() {
        let mut complex = SimplicialComplex::new();
        complex.add(Simplex::new([0, 1, 2]));
        complex.add(Simplex::new([2, 3]));
        let star = complex.star(2);
        assert!(star.contains(&Simplex::new([0, 1, 2])));
        assert!(star.contains(&Simplex::new([2, 3])));
        assert!(star.contains(&Simplex::vertex(0)), "faces of starred simplices are included");
        let link = complex.link(2);
        assert!(link.contains(&Simplex::new([0, 1])));
        assert!(link.contains(&Simplex::vertex(3)));
        assert!(!link.contains(&Simplex::vertex(2)));
    }

    #[test]
    fn skeleton_cuts_high_dimensions() {
        let mut complex = SimplicialComplex::new();
        complex.add(Simplex::new([0, 1, 2, 3]));
        let one_skeleton = complex.skeleton(1);
        assert_eq!(one_skeleton.dimension(), Some(1));
        assert_eq!(one_skeleton.simplices_of_dim(1).count(), 6);
        assert_eq!(one_skeleton.simplices_of_dim(0).count(), 4);
    }

    #[test]
    fn join_of_two_edges_is_a_tetrahedron_boundary_fill() {
        let a = SimplicialComplex::from_simplices([Simplex::new([0, 1])]);
        let b = SimplicialComplex::from_simplices([Simplex::new([2, 3])]);
        let joined = a.join(&b);
        assert!(joined.contains(&Simplex::new([0, 1, 2, 3])));
        assert_eq!(joined.dimension(), Some(3));
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn join_requires_disjoint_vertex_sets() {
        let a = SimplicialComplex::from_simplices([Simplex::new([0, 1])]);
        let b = SimplicialComplex::from_simplices([Simplex::new([1, 2])]);
        let _ = a.join(&b);
    }

    #[test]
    fn euler_characteristic_of_sphere_like_complexes() {
        // The hollow triangle is a circle: χ = 0.
        assert_eq!(triangle_boundary().euler_characteristic(), 0);
        // A filled triangle is contractible: χ = 1.
        let mut filled = SimplicialComplex::new();
        filled.add(Simplex::new([0, 1, 2]));
        assert_eq!(filled.euler_characteristic(), 1);
        // The boundary of a tetrahedron is a 2-sphere: χ = 2.
        let mut sphere = SimplicialComplex::new();
        for face in Simplex::new([0, 1, 2, 3]).boundary() {
            sphere.add(face);
        }
        assert_eq!(sphere.euler_characteristic(), 2);
    }
}
