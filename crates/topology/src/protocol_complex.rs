//! Protocol complexes and star complexes of process states.
//!
//! The `m`-round protocol complex of a full-information protocol has one
//! vertex per reachable local state `(process, view)` and one facet per
//! execution, consisting of the states of the processes that are still active
//! at time `m` in that execution.  The *star* `St(⟨i,m⟩, P_m)` of a state is
//! the subcomplex of executions indistinguishable to that state — the object
//! the paper's Proposition 2 relates to hidden capacity.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use synchrony::{Adversary, ModelError, Node, ProcessId, Run, SystemParams, Time, View};

use crate::{homology, Simplex, SimplicialComplex};

/// The `m`-round protocol complex of the full-information protocol over a
/// given set of adversaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolComplex {
    time: Time,
    complex: SimplicialComplex,
    labels: Vec<(ProcessId, View)>,
    #[serde(skip)]
    index: HashMap<(ProcessId, View), usize>,
}

impl ProtocolComplex {
    /// Builds the time-`time` protocol complex over the executions induced by
    /// `adversaries`.
    ///
    /// # Errors
    ///
    /// Propagates model errors raised while simulating the runs (e.g. an
    /// adversary inconsistent with the system parameters).
    pub fn build(
        system: SystemParams,
        adversaries: &[Adversary],
        time: Time,
    ) -> Result<Self, ModelError> {
        let mut labels: Vec<(ProcessId, View)> = Vec::new();
        let mut index: HashMap<(ProcessId, View), usize> = HashMap::new();
        let mut complex = SimplicialComplex::new();
        for adversary in adversaries {
            let run = Run::generate(system, adversary.clone(), time)?;
            let mut facet = Vec::new();
            for i in 0..run.n() {
                if !run.is_active(i, time) {
                    continue;
                }
                let view = View::extract(&run, Node::new(i, time));
                let key = (ProcessId::new(i), view);
                let id = match index.get(&key) {
                    Some(&id) => id,
                    None => {
                        let id = labels.len();
                        labels.push(key.clone());
                        index.insert(key, id);
                        id
                    }
                };
                facet.push(id);
            }
            if !facet.is_empty() {
                complex.add(Simplex::new(facet));
            }
        }
        Ok(ProtocolComplex { time, complex, labels, index })
    }

    /// Returns the time of the protocol complex.
    pub fn time(&self) -> Time {
        self.time
    }

    /// Returns the underlying simplicial complex.
    pub fn complex(&self) -> &SimplicialComplex {
        &self.complex
    }

    /// Returns the number of distinct local states (vertices).
    pub fn num_states(&self) -> usize {
        self.labels.len()
    }

    /// Returns the number of executions contributing facets.
    pub fn num_facets(&self) -> usize {
        self.complex.facets().count()
    }

    /// Returns the label `(process, view)` of a vertex.
    pub fn label(&self, id: usize) -> &(ProcessId, View) {
        &self.labels[id]
    }

    /// Returns the vertex identifier of the local state of `node` in `run`,
    /// if that state occurs in the complex.
    pub fn state_id(&self, run: &Run, node: Node) -> Option<usize> {
        let view = View::extract(run, node);
        self.index.get(&(node.process, view)).copied()
    }

    /// Returns the star complex `St(v, P_m)` of the vertex `id`: every facet
    /// containing the vertex, together with all faces.
    pub fn star(&self, id: usize) -> SimplicialComplex {
        self.complex.star(id)
    }

    /// Returns `true` if the star complex of the vertex is `q`-connected in
    /// the reduced-GF(2)-homology sense.
    pub fn star_is_q_connected(&self, id: usize, q: usize) -> bool {
        homology::is_q_connected(&self.star(id), q)
    }
}

impl fmt::Display for ProtocolComplex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protocol complex at time {}: {} states, {} facets",
            self.time,
            self.num_states(),
            self.num_facets()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use synchrony::{FailurePattern, InputVector};

    /// All adversaries over `n` processes with binary inputs and at most one
    /// crash, occurring in round 1 with an arbitrary delivery subset.
    fn one_round_adversaries(n: usize) -> Vec<Adversary> {
        let mut adversaries = Vec::new();
        let inputs: Vec<InputVector> = (0..(1u32 << n))
            .map(|mask| {
                InputVector::from_values(
                    (0..n).map(|i| u64::from(mask >> i & 1)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let mut patterns = vec![FailurePattern::crash_free(n)];
        for crasher in 0..n {
            let others: Vec<usize> = (0..n).filter(|&p| p != crasher).collect();
            for mask in 0..(1u32 << others.len()) {
                let delivered: Vec<usize> = others
                    .iter()
                    .enumerate()
                    .filter(|(bit, _)| mask & (1 << bit) != 0)
                    .map(|(_, &p)| p)
                    .collect();
                let mut pattern = FailurePattern::crash_free(n);
                pattern.crash(crasher, 1, delivered).unwrap();
                patterns.push(pattern);
            }
        }
        for pattern in &patterns {
            for input in &inputs {
                adversaries.push(Adversary::new(input.clone(), pattern.clone()).unwrap());
            }
        }
        adversaries
    }

    #[test]
    fn one_round_binary_complex_has_expected_shape() {
        let n = 3;
        let system = SystemParams::new(n, 1).unwrap();
        let adversaries = one_round_adversaries(n);
        let pc = ProtocolComplex::build(system, &adversaries, Time::new(1)).unwrap();
        // The one-round protocol complex of the synchronous model with at most
        // one crash is connected (this is what makes consensus unsolvable in
        // one round with a possible failure).
        assert!(homology::is_q_connected(pc.complex(), 0));
        assert!(pc.num_states() > n);
        assert!(pc.num_facets() > 1);
        assert!(!pc.to_string().is_empty());
    }

    #[test]
    fn failure_free_states_appear_in_the_complex() {
        let n = 3;
        let system = SystemParams::new(n, 1).unwrap();
        let adversaries = one_round_adversaries(n);
        let pc = ProtocolComplex::build(system, &adversaries, Time::new(1)).unwrap();
        let failure_free = Adversary::failure_free(InputVector::from_values([0, 1, 1])).unwrap();
        let run = Run::generate(system, failure_free, Time::new(1)).unwrap();
        for i in 0..n {
            let id = pc.state_id(&run, Node::new(i, Time::new(1)));
            assert!(id.is_some(), "state of process {i} should be in the complex");
        }
    }

    #[test]
    fn star_of_a_state_with_a_hidden_path_is_connected() {
        // Proposition 2 for k = 1: a state whose hidden capacity is at least 1
        // in every round has a 0-connected (i.e. connected) star complex.
        let n = 3;
        let system = SystemParams::new(n, 1).unwrap();
        let adversaries = one_round_adversaries(n);
        let pc = ProtocolComplex::build(system, &adversaries, Time::new(1)).unwrap();
        // In the run where p0 crashes silently in round 1, p2's state at time 1
        // has a hidden node at every layer (hidden capacity 1).
        let mut failures = FailurePattern::crash_free(n);
        failures.crash_silent(0, 1).unwrap();
        let adversary = Adversary::new(InputVector::from_values([0, 1, 1]), failures).unwrap();
        let run = Run::generate(system, adversary, Time::new(1)).unwrap();
        let analysis = knowledge::ViewAnalysis::new(&run, Node::new(2, Time::new(1))).unwrap();
        assert!(analysis.hidden_capacity() >= 1);
        let id = pc.state_id(&run, Node::new(2, Time::new(1))).unwrap();
        assert!(pc.star_is_q_connected(id, 0));
    }

    #[test]
    fn state_lookup_fails_for_views_outside_the_complex() {
        let n = 3;
        let system = SystemParams::new(n, 1).unwrap();
        // Build the complex from failure-free runs only.
        let adversaries: Vec<Adversary> =
            one_round_adversaries(n).into_iter().filter(|a| a.num_failures() == 0).collect();
        let pc = ProtocolComplex::build(system, &adversaries, Time::new(1)).unwrap();
        // A run with a crash produces a view that is not a vertex.
        let mut failures = FailurePattern::crash_free(n);
        failures.crash_silent(0, 1).unwrap();
        let adversary = Adversary::new(InputVector::from_values([0, 1, 1]), failures).unwrap();
        let run = Run::generate(system, adversary, Time::new(1)).unwrap();
        assert!(pc.state_id(&run, Node::new(2, Time::new(1))).is_none());
    }
}
