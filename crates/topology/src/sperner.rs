//! Sperner colorings and Sperner's lemma (Lemma 4 of the paper).
//!
//! A *Sperner coloring* of a subdivision maps every subdivision vertex to a
//! vertex of its carrier.  Sperner's lemma states that any such coloring
//! produces an **odd** number of fully-colored full-dimensional simplices —
//! the pigeonhole engine behind the topological proof of Lemma 1.

use serde::{Deserialize, Serialize};

use crate::{Simplex, Subdivision};

/// A coloring of a subdivision's vertices by vertices of the base simplex.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coloring {
    colors: Vec<usize>,
}

impl Coloring {
    /// Creates a coloring from per-vertex colors, indexed by subdivision
    /// vertex identifier.
    pub fn new(colors: Vec<usize>) -> Self {
        Coloring { colors }
    }

    /// Builds a coloring by applying `rule` to every subdivision vertex.
    pub fn from_rule(subdivision: &Subdivision, mut rule: impl FnMut(usize) -> usize) -> Self {
        Coloring { colors: (0..subdivision.num_vertices()).map(&mut rule).collect() }
    }

    /// Builds the canonical Sperner coloring that maps every vertex to the
    /// smallest vertex of its carrier.
    pub fn min_of_carrier(subdivision: &Subdivision) -> Self {
        Coloring::from_rule(subdivision, |id| {
            subdivision.carrier(id).vertices().min().expect("carriers are non-empty")
        })
    }

    /// Returns the color of a subdivision vertex.
    pub fn color(&self, id: usize) -> usize {
        self.colors[id]
    }

    /// Returns the number of colored vertices.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Returns `true` if no vertex is colored.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }
}

/// Returns `true` if the coloring is a Sperner coloring of the subdivision:
/// every vertex receives a vertex of its own carrier.
pub fn is_sperner_coloring(subdivision: &Subdivision, coloring: &Coloring) -> bool {
    coloring.len() == subdivision.num_vertices()
        && (0..subdivision.num_vertices())
            .all(|id| subdivision.carrier(id).contains(coloring.color(id)))
}

/// Counts the full-dimensional simplices of the subdivision whose vertices
/// receive pairwise distinct colors (and therefore all base-simplex colors).
pub fn fully_colored_facets(subdivision: &Subdivision, coloring: &Coloring) -> usize {
    subdivision.full_facets().filter(|facet| is_fully_colored(facet, coloring)).count()
}

fn is_fully_colored(facet: &Simplex, coloring: &Coloring) -> bool {
    let colors: std::collections::BTreeSet<usize> =
        facet.vertices().map(|id| coloring.color(id)).collect();
    colors.len() == facet.len()
}

/// Verifies Sperner's lemma for a concrete subdivision and coloring: the
/// coloring is Sperner and the number of fully-colored facets is odd.
pub fn verify_sperner_lemma(subdivision: &Subdivision, coloring: &Coloring) -> bool {
    is_sperner_coloring(subdivision, coloring)
        && fully_colored_facets(subdivision, coloring) % 2 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simplex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sperner_coloring(subdivision: &Subdivision, seed: u64) -> Coloring {
        let mut rng = StdRng::seed_from_u64(seed);
        Coloring::from_rule(subdivision, |id| {
            let carrier: Vec<usize> = subdivision.carrier(id).vertices().collect();
            carrier[rng.random_range(0..carrier.len())]
        })
    }

    #[test]
    fn min_of_carrier_is_a_sperner_coloring() {
        for k in 1..=4usize {
            let base = Simplex::new(0..=k);
            for sub in [Subdivision::barycentric(&base), Subdivision::paper_div(&base)] {
                let coloring = Coloring::min_of_carrier(&sub);
                assert!(is_sperner_coloring(&sub, &coloring));
                assert!(verify_sperner_lemma(&sub, &coloring), "k = {k}");
            }
        }
    }

    #[test]
    fn random_sperner_colorings_always_have_an_odd_count() {
        for k in 1..=3usize {
            let base = Simplex::new(0..=k);
            for sub in [Subdivision::barycentric(&base), Subdivision::paper_div(&base)] {
                for seed in 0..30u64 {
                    let coloring = random_sperner_coloring(&sub, seed);
                    assert!(is_sperner_coloring(&sub, &coloring));
                    let count = fully_colored_facets(&sub, &coloring);
                    assert_eq!(count % 2, 1, "k = {k}, seed {seed}: count {count}");
                }
            }
        }
    }

    #[test]
    fn non_sperner_colorings_are_detected() {
        let base = Simplex::new([0, 1, 2]);
        let sub = Subdivision::barycentric(&base);
        // Color everything with 0, which is not in every carrier.
        let coloring = Coloring::from_rule(&sub, |_| 0);
        assert!(!is_sperner_coloring(&sub, &coloring));
    }

    #[test]
    fn trivial_subdivision_has_exactly_one_fully_colored_facet() {
        let base = Simplex::new([0, 1, 2]);
        let sub = Subdivision::trivial(&base);
        // The identity coloring (each original vertex keeps its label).
        let coloring = Coloring::from_rule(&sub, |id| {
            sub.carrier(id).vertices().next().expect("original vertex")
        });
        assert!(is_sperner_coloring(&sub, &coloring));
        assert_eq!(fully_colored_facets(&sub, &coloring), 1);
        assert!(verify_sperner_lemma(&sub, &coloring));
    }

    #[test]
    fn coloring_accessors() {
        let coloring = Coloring::new(vec![0, 1, 2]);
        assert_eq!(coloring.color(1), 1);
        assert_eq!(coloring.len(), 3);
        assert!(!coloring.is_empty());
    }
}
